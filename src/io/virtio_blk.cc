#include "src/io/virtio_blk.h"

#include <algorithm>
#include <utility>

#include "src/io/dsm_transfer.h"
#include "src/sim/check.h"

namespace fragvisor {
namespace {

constexpr uint64_t kDoorbellBytes = 64;

}  // namespace

VirtioBlkDev::VirtioBlkDev(EventLoop* loop, RpcLayer* rpc, DsmEngine* dsm,
                           GuestAddressSpace* space, const CostModel* costs,
                           const VirtioBlkConfig& config, LocatorFn locator)
    : loop_(loop),
      rpc_(rpc),
      dsm_(dsm),
      space_(space),
      costs_(costs),
      config_(config),
      locator_(std::move(locator)) {
  FV_CHECK(loop != nullptr);
  FV_CHECK(rpc != nullptr);
  FV_CHECK(dsm != nullptr);
  FV_CHECK(space != nullptr);
  FV_CHECK(costs != nullptr);
  FV_CHECK(locator_ != nullptr);
  FV_CHECK_GT(config.num_vcpus, 0);
  const int queues = config_.multiqueue ? config_.num_vcpus : 1;
  ring_base_ = space_->AllocIoRingPages(static_cast<uint64_t>(queues));
}

TimeNs VirtioBlkDev::DiskService(uint64_t bytes) {
  const TimeNs start = std::max(loop_->now(), disk_busy_until_);
  const TimeNs service =
      costs_->disk_op_latency +
      FromSeconds(static_cast<double>(bytes) / costs_->disk_bytes_per_second);
  disk_busy_until_ = start + service;
  return disk_busy_until_ - loop_->now();
}

void VirtioBlkDev::GuestWrite(int vcpu, uint64_t bytes, std::function<void()> done) {
  stats_.writes.Add(1);
  stats_.write_bytes.Add(bytes);
  GuestIo(vcpu, bytes, /*is_write=*/true, std::move(done));
}

void VirtioBlkDev::GuestRead(int vcpu, uint64_t bytes, std::function<void()> done) {
  stats_.reads.Add(1);
  stats_.read_bytes.Add(bytes);
  GuestIo(vcpu, bytes, /*is_write=*/false, std::move(done));
}

void VirtioBlkDev::GuestIo(int vcpu, uint64_t bytes, bool is_write, std::function<void()> done) {
  FV_CHECK_GE(vcpu, 0);
  FV_CHECK_LT(vcpu, config_.num_vcpus);
  const NodeId issuer = locator_(vcpu);
  const TimeNs t0 = loop_->now();
  auto complete = [this, t0, done = std::move(done)]() mutable {
    stats_.op_latency_ns.Record(static_cast<double>(loop_->now() - t0));
    done();
  };

  if (config_.backend == BlkBackend::kTmpfs) {
    TmpfsIo(issuer, bytes, is_write, std::move(complete));
    return;
  }

  const bool remote = issuer != config_.backend_node;
  if (remote) {
    stats_.delegated_ops.Add(1);
  }

  auto submit = [this, issuer, bytes, is_write, remote,
                 complete = std::move(complete)]() mutable {
    if (!remote) {
      loop_->ScheduleAfter(costs_->vhost_kick,
                           [this, issuer, bytes, is_write, complete = std::move(complete)]() mutable {
                             VhostIo(issuer, bytes, is_write, std::move(complete));
                           });
      return;
    }
    // Delegated request. Bypass piggybacks write payloads on the doorbell.
    const uint64_t req_bytes =
        (config_.dsm_bypass && is_write) ? kDoorbellBytes + bytes : kDoorbellBytes;
    const MsgKind kind = (config_.dsm_bypass && is_write) ? MsgKind::kIoPayload
                                                          : MsgKind::kIoDoorbell;
    // If the fabric gives up (backend slice died), the op fails back to the
    // guest instead of blocking the vCPU forever.
    RpcLayer::CallOpts opts;
    opts.abort_counter = &stats_.delegation_aborts;
    opts.abort_event = "blk_delegation_abort";
    opts.abort_detail = "stage=doorbell";
    opts.on_fail = complete;
    rpc_->Call(issuer, config_.backend_node, kind, req_bytes,
               [this, issuer, bytes, is_write, complete = std::move(complete)]() mutable {
                 loop_->ScheduleAfter(
                     costs_->notify_wakeup,
                     [this, issuer, bytes, is_write, complete = std::move(complete)]() mutable {
                       VhostIo(issuer, bytes, is_write, std::move(complete));
                     });
               },
               std::move(opts));
  };

  if (config_.dsm_bypass) {
    submit();
    return;
  }
  // Ring descriptor through the DSM (issuer writes, backend reads).
  const int queue = config_.multiqueue ? vcpu : 0;
  const PageNum ring = ring_base_ + static_cast<uint64_t>(queue);
  auto backend_fetch = [this, ring, submit = std::move(submit)]() mutable {
    const bool hit = dsm_->Access(config_.backend_node, ring, false, submit);
    if (hit) {
      submit();
    }
  };
  const bool hit = dsm_->Access(issuer, ring, true, backend_fetch);
  if (hit) {
    backend_fetch();
  }
}

void VirtioBlkDev::VhostIo(NodeId issuer, uint64_t bytes, bool is_write,
                           std::function<void()> done) {
  const bool remote = issuer != config_.backend_node;
  const uint64_t pages = PagesFor(bytes);

  auto complete_back = [this, issuer, remote, done = std::move(done)]() mutable {
    if (!remote) {
      loop_->ScheduleAfter(costs_->irq_inject, std::move(done));
      return;
    }
    loop_->ScheduleAfter(costs_->ipi_to_message, [this, issuer, done = std::move(done)]() mutable {
      // A dead issuer slice cannot take the IRQ; resolve the op anyway (its
      // vCPUs are being failed over).
      RpcLayer::CallOpts opts;
      opts.abort_counter = &stats_.delegation_aborts;
      opts.abort_event = "blk_delegation_abort";
      opts.abort_detail = "stage=completion";
      opts.on_fail = done;
      rpc_->Call(config_.backend_node, issuer, MsgKind::kIoCompletion, kDoorbellBytes,
                 [this, done = std::move(done)]() mutable {
                   loop_->ScheduleAfter(costs_->irq_inject, std::move(done));
                 },
                 std::move(opts));
    });
  };

  auto disk_op = [this, bytes, issuer, remote, pages,
                  is_write, complete_back = std::move(complete_back)]() mutable {
    const TimeNs wait = DiskService(bytes) + costs_->vhost_per_packet;
    loop_->ScheduleAfter(wait, [this, bytes, issuer, remote, pages, is_write,
                                complete_back = std::move(complete_back)]() mutable {
      if (is_write) {
        complete_back();
        return;
      }
      // Read: data must reach the issuing slice.
      if (!remote) {
        complete_back();
        return;
      }
      if (config_.dsm_bypass) {
        // Undeliverable read payload (issuer died): count the abort and fall
        // through to the completion path, which resolves or aborts in turn.
        RpcLayer::CallOpts opts;
        opts.abort_counter = &stats_.delegation_aborts;
        opts.abort_event = "blk_delegation_abort";
        opts.abort_detail = "stage=read_payload";
        opts.on_fail = complete_back;
        rpc_->Call(config_.backend_node, issuer, MsgKind::kIoPayload, bytes + kDoorbellBytes,
                   [this, complete_back = std::move(complete_back)]() mutable {
                     loop_->ScheduleAfter(costs_->irq_inject, std::move(complete_back));
                   },
                   std::move(opts));
        return;
      }
      // vhost writes into guest buffers at the backend; the remote guest then
      // demand-faults them over.
      const PageNum first = space_->AllocTransferRange(pages, config_.backend_node);
      DsmSequentialAccess(dsm_, issuer, first, pages, /*is_write=*/false,
                          std::move(complete_back));
    });
  };

  if (is_write && remote && !config_.dsm_bypass && pages > 0) {
    // Fetch the write payload from the issuer through the DSM first.
    const PageNum first = space_->AllocTransferRange(pages, issuer);
    DsmSequentialAccess(dsm_, config_.backend_node, first, pages, /*is_write=*/false,
                        std::move(disk_op));
    return;
  }
  const TimeNs copy =
      FromSeconds(static_cast<double>(bytes) / costs_->memcpy_bytes_per_second);
  loop_->ScheduleAfter(copy, std::move(disk_op));
}

void VirtioBlkDev::Redelegate(NodeId new_backend) {
  FV_CHECK_GE(new_backend, 0);
  if (new_backend == config_.backend_node) return;
  config_.backend_node = new_backend;
  // The new node's SSD starts idle; the old queue depth dies with the old
  // backend, so the FIFO horizon must not carry over.
  disk_busy_until_ = 0;
  stats_.redelegations.Add(1);
}

void VirtioBlkDev::TmpfsIo(NodeId issuer, uint64_t bytes, bool is_write,
                           std::function<void()> done) {
  // tmpfs: the "disk" is guest RAM, origin-backed; consistency via DSM.
  const uint64_t pages = PagesFor(bytes);
  if (pages == 0) {
    loop_->ScheduleAfter(0, std::move(done));
    return;
  }
  const PageNum first = space_->AllocHeapRange(pages, -1);
  const TimeNs copy =
      FromSeconds(static_cast<double>(bytes) / costs_->memcpy_bytes_per_second);
  DsmSequentialAccess(dsm_, issuer, first, pages, is_write,
                      [this, copy, done = std::move(done)]() mutable {
                        loop_->ScheduleAfter(copy, std::move(done));
                      });
}

}  // namespace fragvisor
