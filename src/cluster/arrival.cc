#include "src/cluster/arrival.h"

#include <algorithm>

#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace fragvisor {
namespace {

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Protean-style size mix: 2-4 vCPU VMs dominate, with a thin large tail.
int SampleVcpus(Rng& rng, int max_vcpus) {
  const double r = rng.NextDouble();
  int v;
  if (r < 0.15) {
    v = 1;
  } else if (r < 0.50) {
    v = 2;
  } else if (r < 0.80) {
    v = 4;
  } else if (r < 0.95) {
    v = 6;
  } else {
    v = 8;
  }
  return v < max_vcpus ? v : max_vcpus;
}

}  // namespace

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kFlash: return "flash";
  }
  return "?";
}

bool ParseArrivalKind(const std::string& s, ArrivalKind* out) {
  if (s == "poisson") {
    *out = ArrivalKind::kPoisson;
  } else if (s == "diurnal") {
    *out = ArrivalKind::kDiurnal;
  } else if (s == "flash") {
    *out = ArrivalKind::kFlash;
  } else {
    return false;
  }
  return true;
}

std::vector<VmArrival> GenerateArrivalTrace(const ArrivalTraceOptions& opts) {
  FV_CHECK_GT(opts.vms, 0);
  FV_CHECK_GT(opts.span, 0);
  FV_CHECK_GT(opts.max_vcpus, 0);
  FV_CHECK_GT(opts.requests_per_vcpu, 0u);
  FV_CHECK_GE(opts.remote_frac, 0.0);
  FV_CHECK_LE(opts.remote_frac, 1.0);

  Rng rng(SplitMix(opts.seed ^ 0xa441ull));
  const double span = static_cast<double>(opts.span);
  const int n = opts.vms;

  // Arrival instants, per shape. All three produce nondecreasing sequences.
  std::vector<TimeNs> times;
  times.reserve(static_cast<size_t>(n));
  switch (opts.kind) {
    case ArrivalKind::kPoisson: {
      const double mean_gap = span / static_cast<double>(n);
      double t = 0;
      for (int i = 0; i < n; ++i) {
        t += rng.Exponential(mean_gap);
        times.push_back(static_cast<TimeNs>(t));
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      // Day peak: 60% of the VMs arrive in the first 30% of the span, the
      // rest spread over the remaining 70% — two Poisson segments.
      const int peak = (n * 6) / 10;
      double t = 0;
      const double peak_gap = (span * 0.3) / static_cast<double>(peak > 0 ? peak : 1);
      for (int i = 0; i < peak; ++i) {
        t += rng.Exponential(peak_gap);
        times.push_back(static_cast<TimeNs>(t));
      }
      if (t < span * 0.3) {
        t = span * 0.3;
      }
      const int rest = n - peak;
      const double rest_gap = (span * 0.7) / static_cast<double>(rest > 0 ? rest : 1);
      for (int i = 0; i < rest; ++i) {
        t += rng.Exponential(rest_gap);
        times.push_back(static_cast<TimeNs>(t));
      }
      break;
    }
    case ArrivalKind::kFlash: {
      // Background Poisson over the span plus a flash crowd: 70% of the VMs
      // land inside a window 5% of the span wide centered at 40%.
      const int flash = (n * 7) / 10;
      const int background = n - flash;
      double t = 0;
      const double bg_gap = span / static_cast<double>(background > 0 ? background : 1);
      for (int i = 0; i < background; ++i) {
        t += rng.Exponential(bg_gap);
        times.push_back(static_cast<TimeNs>(t));
      }
      const double flash_start = span * 0.40;
      const double flash_width = span * 0.05;
      for (int i = 0; i < flash; ++i) {
        times.push_back(static_cast<TimeNs>(flash_start + rng.NextDouble() * flash_width));
      }
      std::sort(times.begin(), times.end());
      break;
    }
  }

  std::vector<VmArrival> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    VmArrival a;
    a.vm = static_cast<uint64_t>(i) + 1;
    a.time = times[static_cast<size_t>(i)];
    a.vcpus = SampleVcpus(rng, opts.max_vcpus);
    a.mem_bytes = opts.mem_per_vcpu * static_cast<uint64_t>(a.vcpus);
    a.requests = opts.requests_per_vcpu * static_cast<uint64_t>(a.vcpus);
    // Jitter the remote fraction ±25% around the mean, clamped to [0, 1].
    double rf = opts.remote_frac * (0.75 + 0.5 * rng.NextDouble());
    if (rf > 1.0) {
      rf = 1.0;
    }
    a.remote_frac = rf;
    out.push_back(a);
  }
  std::stable_sort(out.begin(), out.end(), [](const VmArrival& x, const VmArrival& y) {
    return x.time != y.time ? x.time < y.time : x.vm < y.vm;
  });
  return out;
}

}  // namespace fragvisor
