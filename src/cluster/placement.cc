#include "src/cluster/placement.h"

#include <algorithm>

#include "src/sim/check.h"

namespace fragvisor {
namespace {

// Slots this node can actually host: limited by free vCPU slots and by the
// memory each slot drags along.
int UsableSlots(const NodeCapacityView& n, uint64_t mem_per_slot) {
  if (n.free_vcpus <= 0) {
    return 0;
  }
  if (mem_per_slot == 0) {
    return n.free_vcpus;
  }
  const uint64_t by_mem = n.free_mem / mem_per_slot;
  const uint64_t by_cpu = static_cast<uint64_t>(n.free_vcpus);
  return static_cast<int>(by_mem < by_cpu ? by_mem : by_cpu);
}

struct Fragment {
  NodeId node = kInvalidNode;
  int usable = 0;
};

std::vector<Fragment> Fragments(const std::vector<NodeCapacityView>& nodes,
                                uint64_t mem_per_slot) {
  std::vector<Fragment> out;
  for (const NodeCapacityView& n : nodes) {
    const int usable = UsableSlots(n, mem_per_slot);
    if (usable > 0) {
      out.push_back(Fragment{n.node, usable});
    }
  }
  return out;
}

// Greedy fill over pre-sorted fragments; empty map if they don't cover.
std::map<NodeId, int> Fill(const std::vector<Fragment>& frags, int vcpus) {
  std::map<NodeId, int> alloc;
  int remaining = vcpus;
  for (const Fragment& f : frags) {
    const int take = remaining < f.usable ? remaining : f.usable;
    alloc[f.node] = take;
    remaining -= take;
    if (remaining == 0) {
      return alloc;
    }
  }
  return {};
}

class FragBffPlacement : public PlacementPolicy {
 public:
  const char* name() const override { return "fragbff"; }

  std::map<NodeId, int> Place(const std::vector<NodeCapacityView>& nodes, int vcpus,
                              uint64_t mem_per_slot) override {
    FV_CHECK_GT(vcpus, 0);
    // Best-fit first: the single node whose usable capacity fits most
    // tightly.
    const NodeCapacityView* best = nullptr;
    int best_usable = 0;
    for (const NodeCapacityView& n : nodes) {
      const int usable = UsableSlots(n, mem_per_slot);
      if (usable < vcpus) {
        continue;
      }
      if (best == nullptr || usable < best_usable) {
        best = &n;
        best_usable = usable;
      }
    }
    if (best != nullptr) {
      return {{best->node, vcpus}};
    }
    // FragBFF: aggregate the smallest usable fragments first, which preserves
    // large free chunks for future whole placements (kMinFragmentation).
    std::vector<Fragment> frags = Fragments(nodes, mem_per_slot);
    std::sort(frags.begin(), frags.end(), [](const Fragment& a, const Fragment& b) {
      return a.usable != b.usable ? a.usable < b.usable : a.node < b.node;
    });
    return Fill(frags, vcpus);
  }
};

class HarvestPlacement : public PlacementPolicy {
 public:
  const char* name() const override { return "harvest"; }

  std::map<NodeId, int> Place(const std::vector<NodeCapacityView>& nodes, int vcpus,
                              uint64_t mem_per_slot) override {
    FV_CHECK_GT(vcpus, 0);
    // Harvest-aware: take the largest idle fragments first — the VM spans
    // the fewest nodes and runs where the most idle capacity sits, at the
    // price of carving up big free chunks.
    std::vector<Fragment> frags = Fragments(nodes, mem_per_slot);
    std::sort(frags.begin(), frags.end(), [](const Fragment& a, const Fragment& b) {
      return a.usable != b.usable ? a.usable > b.usable : a.node < b.node;
    });
    return Fill(frags, vcpus);
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const std::string& name) {
  if (name == "fragbff") {
    return std::make_unique<FragBffPlacement>();
  }
  if (name == "harvest") {
    return std::make_unique<HarvestPlacement>();
  }
  return nullptr;
}

}  // namespace fragvisor
