// Open-loop VM arrival traces for the cluster marketplace (DESIGN.md §11).
//
// A trace is a deterministic function of ArrivalTraceOptions: a sorted list
// of VM arrivals, each with a size (vCPUs, memory) and an open-loop request
// budget its tenant will push through the cluster once admitted. Three trace
// shapes cover the load patterns the paper's marketplace argument cares
// about:
//  * poisson — memoryless FaaS-style arrivals at a constant mean rate;
//  * diurnal — a day-peak (most arrivals compressed into the front of the
//    span) followed by a sparse tail;
//  * flash   — a flash crowd: a narrow burst in the middle of an otherwise
//    Poisson span.
//
// VM sizes follow the Protean-style mix GenerateBurst uses (2-4 vCPUs
// dominate); request budgets and the remote-access fraction scale with size.

#ifndef FRAGVISOR_SRC_CLUSTER_ARRIVAL_H_
#define FRAGVISOR_SRC_CLUSTER_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/sim/time.h"

namespace fragvisor {

enum class ArrivalKind : uint8_t {
  kPoisson = 0,
  kDiurnal = 1,
  kFlash = 2,
};

const char* ArrivalKindName(ArrivalKind kind);
// Parses "poisson" / "diurnal" / "flash"; returns false on anything else.
bool ParseArrivalKind(const std::string& s, ArrivalKind* out);

struct VmArrival {
  uint64_t vm = 0;           // tenant id, 1-based, dense
  TimeNs time = 0;           // arrival offset from the trace start
  int vcpus = 1;
  uint64_t mem_bytes = 0;
  uint64_t requests = 0;     // total open-loop request budget
  double remote_frac = 0.0;  // fraction of requests that touch borrowed memory
};

struct ArrivalTraceOptions {
  ArrivalKind kind = ArrivalKind::kPoisson;
  int vms = 100;
  TimeNs span = Millis(20);  // arrival window the trace covers
  uint64_t seed = 1;
  int max_vcpus = 8;
  uint64_t mem_per_vcpu = 1ull << 30;  // 1 GiB
  uint64_t requests_per_vcpu = 2000;
  double remote_frac = 0.35;  // mean; per-VM values jitter around it
};

// Generates the trace: `vms` arrivals sorted by (time, vm).
std::vector<VmArrival> GenerateArrivalTrace(const ArrivalTraceOptions& opts);

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CLUSTER_ARRIVAL_H_
