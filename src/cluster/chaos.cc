#include "src/cluster/chaos.h"

#include <string>
#include <utility>
#include <vector>

#include "src/sim/check.h"

namespace fragvisor {
namespace {

// splitmix64 — the campaign derives all schedule randomness from (mode,
// seed) through this, independent of any global RNG state.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Fault-free horizon of the base configuration: fault instants are placed
// as fractions of it so schedules land mid-wave regardless of scale. The
// probe run is itself deterministic, so so is the derived schedule.
TimeNs ProbeHorizon(const MarketplaceOptions& base) {
  MarketplaceOptions clean = base;
  clean.faults = MarketplaceFaultOptions{};
  const MarketplaceResult r = RunMarketplace(clean, 1);
  FV_CHECK_GT(r.finish_time, 0);
  return r.finish_time;
}

}  // namespace

const char* ChaosModeName(ChaosMode mode) {
  switch (mode) {
    case ChaosMode::kCrash: return "crash";
    case ChaosMode::kPartition: return "partition";
    case ChaosMode::kJitter: return "jitter";
  }
  return "?";
}

MarketplaceFaultOptions MakeChaosFaults(const MarketplaceOptions& base, ChaosMode mode,
                                        uint64_t seed) {
  const TimeNs horizon = ProbeHorizon(base);
  const int n = base.num_nodes;
  FV_CHECK_GE(n, 2);
  MarketplaceFaultOptions f;
  f.seed = Mix(seed ^ (static_cast<uint64_t>(mode) << 32));
  const uint64_t r0 = Mix(f.seed);
  const uint64_t r1 = Mix(r0);
  const uint64_t r2 = Mix(r1);
  switch (mode) {
    case ChaosMode::kCrash: {
      // First crash hits the orchestrator (node 0) mid-wave — the failover
      // tentpole; the second takes out a random lender later on.
      const TimeNs t0 = horizon * 25 / 100 + static_cast<TimeNs>(r0 % 1000) * horizon / 10000;
      const TimeNs t1 = horizon * 50 / 100 + static_cast<TimeNs>(r1 % 1000) * horizon / 10000;
      f.crashes.push_back({0, t0});
      f.crashes.push_back({1 + static_cast<int>(r2 % static_cast<uint64_t>(n - 1)), t1});
      break;
    }
    case ChaosMode::kPartition: {
      const int a = static_cast<int>(r0 % static_cast<uint64_t>(n));
      int b = static_cast<int>(r1 % static_cast<uint64_t>(n));
      if (b == a) b = (b + 1) % n;
      const TimeNs from = horizon * 30 / 100 + static_cast<TimeNs>(r2 % 1000) * horizon / 10000;
      f.partitions.push_back({a, b, from, from + horizon * 30 / 100});
      break;
    }
    case ChaosMode::kJitter: {
      f.drop_prob = 0.02;
      f.dup_prob = 0.01;
      f.extra_delay_max = Micros(3);
      break;
    }
  }
  return f;
}

std::vector<std::string> CheckClusterInvariants(const MarketplaceOptions& opts,
                                                const MarketplaceResult& r) {
  std::vector<std::string> v;
  const auto violate = [&v](const std::string& s) { v.push_back(s); };
  const uint64_t vms = static_cast<uint64_t>(r.vms.size());

  // Exactly-once termination: every VM completed xor failed, counts add up.
  uint64_t completed = 0;
  uint64_t failed = 0;
  for (const VmOutcome& o : r.vms) {
    if (o.completed == o.failed) {
      violate("vm " + std::to_string(o.vm) + ": completed=" + std::to_string(o.completed) +
              " failed=" + std::to_string(o.failed) + " (want exactly one)");
    }
    completed += o.completed ? 1 : 0;
    failed += o.failed ? 1 : 0;
    if (o.completed && o.finished < o.started) {
      violate("vm " + std::to_string(o.vm) + ": finished before it started");
    }
    if (o.failed && o.fail_reason == VmFailReason::kNone) {
      violate("vm " + std::to_string(o.vm) + ": failed without a reason");
    }
    if (o.completed && o.fail_reason != VmFailReason::kNone) {
      violate("vm " + std::to_string(o.vm) + ": completed with a fail reason");
    }
  }
  if (completed != r.vms_completed) {
    violate("vms_completed=" + std::to_string(r.vms_completed) + " but " +
            std::to_string(completed) + " outcomes say done");
  }
  if (failed != r.vms_failed) {
    violate("vms_failed=" + std::to_string(r.vms_failed) + " but " + std::to_string(failed) +
            " outcomes say failed");
  }
  if (completed + failed != vms) {
    violate("completed+failed=" + std::to_string(completed + failed) + " != vms=" +
            std::to_string(vms));
  }

  // Lease conservation: every book entry ever created (requested or
  // restored) left exactly one way, and the book ended empty.
  const LeaseStats& ls = r.lease;
  const uint64_t in = ls.requested.value() + ls.restored.value();
  const uint64_t out = ls.expired.value() + ls.revoked.value() + ls.released.value() +
                       ls.lost.value() + ls.dropped.value() + ls.orphaned.value() +
                       ls.failover_cleared.value();
  if (in != out) {
    violate("lease conservation: in=" + std::to_string(in) + " != out=" + std::to_string(out));
  }

  // Reclamation consistency: the orchestrator counts a reclaim only when the
  // revoke ack lands; revocations the crash machinery swallowed may exceed
  // that, never the reverse.
  if (ls.revoked.value() < r.reclaims) {
    violate("revoked=" + std::to_string(ls.revoked.value()) + " < reclaims=" +
            std::to_string(r.reclaims));
  }
  if (!r.used_fault_plan && ls.revoked.value() != r.reclaims) {
    violate("fault-free revoked=" + std::to_string(ls.revoked.value()) + " != reclaims=" +
            std::to_string(r.reclaims));
  }

  // No stranded reservations: the final drain leaves no committed slots.
  if (r.ledger_residue_slots != 0) {
    violate("ledger residue: " + std::to_string(r.ledger_residue_slots) + " committed slots");
  }

  // A fault-free run must not fail anything or fail over.
  if (!r.used_fault_plan && (r.vms_failed != 0 || r.failovers != 0 || r.nodes_died != 0)) {
    violate("fault-free run reports failures");
  }
  (void)opts;
  return v;
}

ChaosCampaignResult RunChaosCampaign(const ChaosCampaignOptions& opts) {
  FV_CHECK_GE(opts.seeds, 1);
  ChaosCampaignResult out;
  std::vector<ChaosMode> modes;
  if (opts.crash) modes.push_back(ChaosMode::kCrash);
  if (opts.partition) modes.push_back(ChaosMode::kPartition);
  if (opts.jitter) modes.push_back(ChaosMode::kJitter);
  for (const ChaosMode mode : modes) {
    for (int i = 0; i < opts.seeds; ++i) {
      const uint64_t seed = opts.seed0 + static_cast<uint64_t>(i);
      MarketplaceOptions run_opts = opts.base;
      run_opts.faults = MakeChaosFaults(opts.base, mode, seed);
      ChaosRunResult run;
      run.mode = mode;
      run.seed = seed;
      run.result = RunMarketplace(run_opts, opts.threads);
      run.violations = CheckClusterInvariants(run_opts, run.result);
      if (opts.verify_threads > 0 && opts.verify_threads != opts.threads) {
        const MarketplaceResult again = RunMarketplace(run_opts, opts.verify_threads);
        if (MarketplaceReport(run.result) != MarketplaceReport(again)) {
          run.violations.push_back("report differs between threads=" +
                                   std::to_string(opts.threads) + " and threads=" +
                                   std::to_string(opts.verify_threads));
        }
      }
      out.total_violations += run.violations.size();
      out.runs.push_back(std::move(run));
    }
  }
  return out;
}

std::string ChaosCampaignReport(const ChaosCampaignResult& r) {
  std::string out;
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  const auto u = [](uint64_t v) { return std::to_string(v); };
  line("chaos-campaign runs=" + u(r.runs.size()) + " violations=" + u(r.total_violations));
  for (const ChaosRunResult& run : r.runs) {
    const MarketplaceResult& m = run.result;
    line(std::string("run mode=") + ChaosModeName(run.mode) + " seed=" + u(run.seed) +
         " finish_ns=" + std::to_string(m.finish_time) + " digest=" + u(m.state_digest) +
         " completed=" + u(m.vms_completed) + " failed=" + u(m.vms_failed) + " failovers=" +
         u(m.failovers) + " died=" + u(m.nodes_died) + " replacements=" +
         u(m.lender_replacements) + " degradations=" + u(m.lender_degradations) +
         " violations=" + u(run.violations.size()));
    for (const std::string& viol : run.violations) {
      line("  violation: " + viol);
    }
  }
  return out;
}

}  // namespace fragvisor
