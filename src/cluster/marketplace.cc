#include "src/cluster/marketplace.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ckpt/sim_snapshot.h"
#include "src/cluster/placement.h"
#include "src/host/health_monitor.h"
#include "src/host/node.h"
#include "src/sim/check.h"
#include "src/sim/rng.h"
#include "src/sim/snapshot.h"
#include "src/sim/state_io.h"

namespace fragvisor {
namespace {

constexpr uint64_t kCtrlBytes = 256;    // orchestrator control messages
constexpr uint64_t kReqBytes = 64;      // remote page request
constexpr uint64_t kPageBytes = 4096 + 64;
constexpr uint64_t kJournalBytes = 64;  // admission/lease-book delta record
constexpr uint64_t kBeatBytes = 64;     // orchestrator -> successor heartbeat

// Control-token ops, multiplexed over MsgKind::kVcpuMigration (orchestrator
// -> node), MsgKind::kControl (node -> orchestrator, plus heartbeats) and,
// for the failover journal, MsgKind::kCheckpointData (orchestrator ->
// successor). Ops >= kOpNewOrch only ever appear when a fault plan is
// attached; a fault-free run's wire traffic is byte-identical to the
// pre-fault-tolerance marketplace.
constexpr uint64_t kOpStart = 0;     // begin the VM's request streams
constexpr uint64_t kOpCallHome = 1;  // a lender share was consolidated home
constexpr uint64_t kOpVmDone = 2;    // all streams drained
constexpr uint64_t kOpNewOrch = 3;   // takeover: route future dones at src
constexpr uint64_t kOpQuery = 4;     // takeover: report your live homed VMs
constexpr uint64_t kOpDropLender = 5;     // dead lender slice dropped (arg)
constexpr uint64_t kOpReplaceLender = 6;  // dead lender slice re-placed (wide)
constexpr uint64_t kOpPing = 7;      // orchestrator liveness probe (reliable)
constexpr uint64_t kOpQVm = 8;       // interrogation reply: one homed VM
constexpr uint64_t kOpQueryDone = 9; // interrogation trailer; arg = VM count
constexpr uint64_t kOpBeat = 10;     // heartbeat datagram (unreliable)
// Journal records (orchestrator -> successor over kCheckpointData).
constexpr uint64_t kJrnHello = 16;    // (re)sync start; arg = orchestrator id
constexpr uint64_t kJrnAdmit = 17;    // VM admitted
constexpr uint64_t kJrnDone = 18;     // VM completed
constexpr uint64_t kJrnFail = 19;     // VM failed; arg = VmFailReason
constexpr uint64_t kJrnDead = 20;     // arg = node declared dead
constexpr uint64_t kJrnQuiesce = 21;  // outstanding work hit zero; disarm

// splitmix64, as in workload/dsmstorm: spreads structured ids into
// independent-looking seeds and jitter values.
uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Token layout: [op : 8][vm : 40][arg : 16] — arg carries a stream index or
// a node id depending on the op.
uint64_t PackCtl(uint64_t op, uint64_t vm, uint64_t arg) {
  FV_DCHECK(op < (1ull << 8));
  FV_DCHECK(vm < (1ull << 40));
  FV_DCHECK(arg < (1ull << 16));
  return (op << 56) | (vm << 16) | arg;
}
uint64_t CtlOp(uint64_t token) { return token >> 56; }
uint64_t CtlVm(uint64_t token) { return (token >> 16) & ((1ull << 40) - 1); }
uint64_t CtlArg(uint64_t token) { return token & 0xffff; }

// Wide layout for ops that carry two node ids: [op : 8][vm : 32][a : 12]
// [b : 12]. CtlOp() works on both layouts (the op always sits in the top
// byte); node ids are bounded to 4096 when a fault plan is attached.
uint64_t PackWide(uint64_t op, uint64_t vm, uint64_t a, uint64_t b) {
  FV_DCHECK(op < (1ull << 8));
  FV_DCHECK(vm < (1ull << 32));
  FV_DCHECK(a < (1ull << 12));
  FV_DCHECK(b < (1ull << 12));
  return (op << 56) | (vm << 24) | (a << 12) | b;
}
uint64_t WideVm(uint64_t token) { return (token >> 24) & 0xffffffffull; }
uint64_t WideA(uint64_t token) { return (token >> 12) & 0xfff; }
uint64_t WideB(uint64_t token) { return token & 0xfff; }

enum class VmStatus : uint8_t {
  kPending = 0,
  kWaiting = 1,
  kRunning = 2,
  kDone = 3,
  kFailed = 4,  // terminal under faults; exactly-once with kDone
};

struct StreamRt {
  Rng rng{0};
  uint64_t remaining = 0;
  TimeNs issue = 0;       // issue instant of the in-flight request
  bool awaiting = false;  // a completion for the in-flight request is owed
};

// One VM's run state. Orchestrator fields only ever run on the orchestrator
// node's partition (node 0 until a failover moves the role); home-runtime
// fields are written by the orchestrator strictly before the start notice
// and thereafter touched only by the home node's partition (the delivery
// gives the happens-before edge), so the whole struct is race-free without
// locking. A successor reads the dead orchestrator's fields only from
// takeover time onward — at least a full retry horizon past the crash, far
// beyond the engine's lookahead, so the window barriers order every prior
// write before the read and the fields are frozen (every handler that could
// mutate them is liveness-gated off).
struct VmRun {
  // Static shape, fixed at construction from the arrival trace.
  int vcpus = 0;
  uint64_t mem_per_slot = 0;
  uint64_t requests_per_stream = 0;
  double remote_frac = 0.0;

  // Orchestrator-owned.
  VmStatus status = VmStatus::kPending;
  TimeNs submitted = 0;
  TimeNs started = 0;
  TimeNs finished = 0;
  std::vector<std::pair<NodeId, int>> alloc;  // (node, slots), home first
  std::vector<LeaseId> leases;                // one per non-home slice
  int span = 0;                               // |alloc| (post-consolidation)
  bool was_delayed = false;
  uint8_t fail_reason = 0;  // VmFailReason once kFailed

  // Written by the orchestrator before the start notice, home-owned after.
  NodeId home = kInvalidNode;
  std::vector<NodeId> lenders;  // non-home slices; shrinks on consolidation
  std::vector<StreamRt> rt;
  int live_streams = 0;
  TimeNs home_epoch = -1;     // start-notice arrival; gates zombie streams
  bool home_done = false;     // all streams drained (home's ground truth)
  TimeNs home_finished = 0;
  int done_attempts = 0;      // done-notify redirect retries so far
};

// Per-node runtime owned by that node's partition (the monitor block is
// owned by the node only while it is the orchestrator's successor).
struct NodeRt {
  MarketplaceNodeCounters c;
  Histogram latency;  // latency of requests homed on this node

  // Home-owned routing state.
  NodeId orch_view = 0;             // where done notices go (legacy: node 0)
  std::vector<uint64_t> homed_vms;  // VMs homed here, ascending

  // Own-partition role epoch: when this node (last) became orchestrator;
  // -1 = never. A crash at or after this instant ends the reign.
  TimeNs orch_since = -1;

  // Successor-owned failure detector + journal shadow.
  PhiAccrualEstimator monitor;
  TimeNs monitor_epoch = -1;  // armed-at instant; a later own-crash disarms
  bool monitor_armed = false;
  bool monitor_check_running = false;
  NodeId watching = kInvalidNode;
  std::vector<uint8_t> shadow;     // per-VM journal view (VmStatus values)
  std::vector<uint8_t> shadow_up;  // per-node journal view of believed_up
};

class Marketplace {
 public:
  Marketplace(const MarketplaceOptions& opts, int threads, bool arm_plan);

  MarketplaceResult Run(const MarketplaceRunConfig& cfg);
  bool Load(const std::string& data, std::string* error);

 private:
  EventLoop* NodeLoop(NodeId node) { return ploop_->partition(node); }
  TimeNs OrchNow() { return NodeLoop(orch_node_)->now(); }

  // --- Liveness gates (all no-ops without a fault plan) ---
  //
  // Crashed nodes lose their wire traffic but their locally-scheduled timer
  // events still fire, so every self-scheduled chain and every handler that
  // acts on behalf of a role re-checks that the role survived.

  // `n` still holds the orchestrator role it held when the event was armed:
  // it became orchestrator at some point and has not crashed since.
  bool RoleIntact(NodeId n, TimeNs now) const {
    if (nodes_[static_cast<size_t>(n)].orch_since < 0) return false;
    if (!faulty_) return true;
    return plan_->NodeUp(n, now) &&
           plan_->LastCrashBefore(n, now) < nodes_[static_cast<size_t>(n)].orch_since;
  }
  // The VM's home-side stream state is still the live incarnation (the home
  // has not crashed since the start notice arrived).
  bool StreamLive(const VmRun& run, TimeNs now) const {
    if (!faulty_) return true;
    return run.home_epoch >= 0 && plan_->NodeUp(run.home, now) &&
           plan_->LastCrashBefore(run.home, now) < run.home_epoch;
  }
  bool NodeUpAt(NodeId n, TimeNs now) const { return !faulty_ || plan_->NodeUp(n, now); }

  // How long a successor must wait past the crash instant before touching
  // the dead orchestrator's lease book and VM table: every reliable send the
  // dead node had in flight fails (on its source partition) within the retry
  // backoff ceiling, after which the book is frozen.
  TimeNs SettleDelay() const { return rpolicy_.max_grace + Millis(2); }

  // Work the orchestrator still owes this wave.
  uint64_t Outstanding() const {
    return arrivals_pending_ + static_cast<uint64_t>(waiting_.size()) + running_count_;
  }

  // Lease handback bound to the book's home *at grant time*: if that node
  // lost the orchestrator role (crashed; the successor rebuilt the book
  // elsewhere), the stale continuation must not act.
  LeaseManager::HandbackFn Handback() {
    const NodeId bh = leases_->home();
    return [this, bh](const Lease& lease, LeaseEvent event) {
      if (faulty_ && !RoleIntact(bh, NodeLoop(bh)->now())) return;
      OnLeaseEvent(lease, event);
    };
  }

  void BuildWaveSchedule(int wave);
  void ScheduleWave();
  void ScheduleKickoff();
  void RunEngine();
  bool WaveTerminal(int wave) const;
  void CheckWaveDrained(int wave);
  std::string Save();
  uint64_t ConfigFingerprint() const;
  uint64_t Digest() const;

  // Orchestrator (runs on orch_node_'s partition).
  void OnArrival(uint64_t vm);
  void TryAdmitAll();
  bool TryAdmit(uint64_t vm);
  bool TryReclaim();
  void OnLeaseEvent(const Lease& lease, LeaseEvent event);
  void OnVmDone(uint64_t vm);
  void SampleSeries();
  void OnControl(const RpcLayer::Inbound& in);
  void OnVcpuCtl(const RpcLayer::Inbound& in);

  // Failure handling on the live orchestrator.
  void DeclareNodeDead(NodeId n, bool record);
  void FailVm(uint64_t vm, VmFailReason reason, TimeNs now);
  void RecoverLostLender(const Lease& lease);

  // Journal replication + heartbeats (orchestrator side).
  void Journal(uint64_t op, uint64_t vm, uint64_t arg);
  void PickSuccessor();
  void ResyncShadow();
  void EnsureFailoverActive(NodeId me);
  void BeatChain(NodeId me);
  void ProbeChain(NodeId me);

  // Successor side: shadow, detector, takeover.
  void HandleJournal(const RpcLayer::Inbound& in);
  void MonitorCheck(NodeId me);
  void StartTakeover(NodeId me, TimeNs crash_t, TimeNs epoch);
  void HandleQuery(const RpcLayer::Inbound& in);
  void MaybeFinishTakeover(NodeId me);
  void FinishTakeover(NodeId me);
  void WaveKickoff(NodeId me);

  // Stopped-engine backstops (no events in flight; cross-partition safe).
  void WavePrep();
  void DriverRecover(int wave);

  // Home-partition request streams.
  void OnVmStart(const RpcLayer::Inbound& in);
  void OnCallHome(uint64_t vm, NodeId lender);
  void DoRequest(uint64_t vm, int stream);
  void Complete(uint64_t vm, int stream);
  void SendVmDone(uint64_t vm);
  void RetryVmDone(uint64_t vm);
  void OnPageRequest(const RpcLayer::Inbound& in);
  void OnPageReply(const RpcLayer::Inbound& in);

  const MarketplaceOptions opts_;
  const int threads_;
  std::unique_ptr<ParallelEventLoop> ploop_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<RpcLayer> rpc_;
  std::unique_ptr<LeaseManager> leases_;
  std::unique_ptr<PlacementPolicy> policy_;

  // Fault machinery (null/inert when no faults are configured).
  bool faulty_ = false;
  RetryPolicy rpolicy_;
  std::unique_ptr<FaultPlan> plan_;

  std::vector<VmArrival> arrivals_;  // sorted by (time, vm)
  std::vector<VmRun> vms_;           // indexed by vm - 1; never resized
  std::vector<NodeRt> nodes_;        // indexed by node; partition-owned

  // Orchestrator state (orch_node_'s partition only).
  NodeId orch_node_ = 0;
  NodeId successor_ = kInvalidNode;
  std::vector<uint8_t> believed_up_;
  std::vector<TenantLedger> ledgers_;
  std::deque<uint64_t> waiting_;  // FIFO of vm ids awaiting admission
  bool reclaim_in_flight_ = false;
  LeaseId pending_reclaim_lease_ = kInvalidLease;
  uint64_t running_count_ = 0;
  uint64_t arrivals_pending_ = 0;
  bool beats_active_ = false;
  bool probes_active_ = false;
  uint64_t placed_single_ = 0;
  uint64_t placed_aggregate_ = 0;
  uint64_t delayed_ = 0;
  uint64_t reclaims_ = 0;
  uint64_t vms_completed_ = 0;
  TimeSeries consolidation_;
  TimeSeries stranded_;

  // Takeover scratch (successor's partition while takeover_active_).
  bool takeover_active_ = false;
  TimeNs takeover_crash_t_ = -1;
  std::vector<std::pair<uint64_t, uint8_t>> takeover_reports_;  // (vm, done)
  std::vector<uint64_t> deferred_dones_;
  std::vector<int32_t> takeover_expect_;  // -3 unqueried, -2 awaiting, -1 dead, >=0 count
  std::vector<int32_t> takeover_have_;

  // Fault-tolerance counters (orchestrator-owned; they transfer with the
  // role under the same settle-time freeze as the rest of the orch state).
  uint64_t failovers_ = 0;
  uint64_t vms_failed_ = 0;
  uint64_t nodes_died_ = 0;
  uint64_t lender_replacements_ = 0;
  uint64_t lender_degradations_ = 0;
  uint64_t journal_records_ = 0;
  uint64_t late_dones_ = 0;
  uint64_t shadow_divergence_ = 0;
  Histogram detection_ns_;
  Histogram recovery_ns_;

  std::vector<std::pair<TimeNs, uint64_t>> wave_sched_;  // (at, vm), this wave
  std::vector<TimeNs> wave_finish_;

  uint64_t events_ = 0;
  int completed_waves_ = 0;
};

Marketplace::Marketplace(const MarketplaceOptions& opts, int threads, bool arm_plan)
    : opts_(opts), threads_(threads < 1 ? 1 : threads) {
  FV_CHECK_GT(opts.num_nodes, 0);
  FV_CHECK_GT(opts.vcpus_per_node, 0);
  FV_CHECK_GT(opts.mem_per_node, 0u);
  FV_CHECK_GE(opts.epochs, 1);
  FV_CHECK_GT(opts.trace.vms, 0);
  FV_CHECK_GT(opts.trace.requests_per_vcpu, 0u);
  // The largest VM must fit the cluster's aggregate at all.
  FV_CHECK_LE(opts.trace.max_vcpus,
              static_cast<uint64_t>(opts.num_nodes) * static_cast<uint64_t>(opts.vcpus_per_node));

  policy_ = MakePlacementPolicy(opts.policy);
  FV_CHECK(policy_ != nullptr);

  ParallelEventLoop::Options po;
  po.num_partitions = opts.num_nodes;
  po.num_threads = threads_;
  // The minimum effective first-hop latency is the cluster-wide floor:
  // jitter only ever adds, and fat-tree cross-pod paths only ever add more.
  po.lookahead = Fabric::MinEffectiveLatency(opts.topology, opts.link, opts.num_nodes);
  ploop_ = std::make_unique<ParallelEventLoop>(po);
  fabric_ = std::make_unique<Fabric>(ploop_.get(), opts.num_nodes, opts.link, opts.topology);

  if (opts.latency_jitter_ns > 0 && opts.num_nodes > 1) {
    for (NodeId s = 0; s < opts.num_nodes; ++s) {
      for (NodeId d = 0; d < opts.num_nodes; ++d) {
        if (s == d) continue;
        LinkParams lp = opts.link;
        const uint64_t key = SplitMix(opts.trace.seed ^
                                      (static_cast<uint64_t>(s) << 32 | static_cast<uint32_t>(d)));
        lp.latency += static_cast<TimeNs>(key % static_cast<uint64_t>(opts.latency_jitter_ns + 1));
        fabric_->SetLinkParams(s, d, lp);
      }
    }
  }

  faulty_ = opts.faults.any();
  if (faulty_) {
    // Wide tokens carry two node ids in 12 bits each.
    FV_CHECK_LE(opts.num_nodes, 4096);
    plan_ = std::make_unique<FaultPlan>(SplitMix(opts.faults.seed ^ 0xc1a05ull));
    plan_->EnablePerNodeStreams(opts.num_nodes);
    LinkFaultProfile profile;
    profile.drop_prob = opts.faults.drop_prob;
    profile.dup_prob = opts.faults.dup_prob;
    profile.extra_delay_max = opts.faults.extra_delay_max;
    if (profile.active()) plan_->SetDefaultLinkFaults(profile);
    for (const MarketplaceFaultOptions::Crash& c : opts.faults.crashes) {
      FV_CHECK_GE(c.node, 0);
      FV_CHECK_LT(c.node, opts.num_nodes);
      FV_CHECK_GE(c.at, 0);
      plan_->CrashNode(c.node, c.at);
    }
    for (const MarketplaceFaultOptions::Restart& rs : opts.faults.restarts) {
      FV_CHECK_GE(rs.node, 0);
      FV_CHECK_LT(rs.node, opts.num_nodes);
      FV_CHECK_GE(rs.at, 0);
      plan_->RestartNode(rs.node, rs.at);
    }
    for (const MarketplaceFaultOptions::Partition& p : opts.faults.partitions) {
      FV_CHECK_GE(p.a, 0);
      FV_CHECK_LT(p.a, opts.num_nodes);
      FV_CHECK_GE(p.b, 0);
      FV_CHECK_LT(p.b, opts.num_nodes);
      FV_CHECK_NE(p.a, p.b);
      plan_->PartitionLink(p.a, p.b, p.from, p.until);
    }
    // A restored run resumes past every transition marker (wave boundaries
    // drain the whole queue, markers included), so re-arming would fire them
    // again at the resume instant and double-count the fault counters.
    fabric_->AttachFaultPlan(plan_.get(), rpolicy_, arm_plan);
  }

  RpcConfig rc;
  rc.coalesced_acks = opts.coalesced_acks;
  rc.qos.enabled = opts.qos;
  rpc_ = std::make_unique<RpcLayer>(nullptr, fabric_.get(), rc);

  LeaseManagerConfig lc;
  lc.manual_clock = true;
  leases_ = std::make_unique<LeaseManager>(rpc_.get(), /*home=*/0, lc);

  ledgers_.resize(static_cast<size_t>(opts.num_nodes));
  for (TenantLedger& l : ledgers_) {
    l.Init(opts.mem_per_node, opts.vcpus_per_node);
  }

  arrivals_ = GenerateArrivalTrace(opts.trace);
  vms_.resize(arrivals_.size());
  for (const VmArrival& a : arrivals_) {
    VmRun& run = vms_[a.vm - 1];
    run.vcpus = a.vcpus;
    run.mem_per_slot = a.mem_bytes / static_cast<uint64_t>(a.vcpus);
    run.requests_per_stream = a.requests / static_cast<uint64_t>(a.vcpus);
    run.remote_frac = a.remote_frac;
    FV_CHECK_LE(run.mem_per_slot, opts.mem_per_node);
    FV_CHECK_GT(run.requests_per_stream, 0u);
  }

  believed_up_.assign(static_cast<size_t>(opts.num_nodes), 1);
  nodes_.resize(static_cast<size_t>(opts.num_nodes));
  nodes_[0].orch_since = 0;  // node 0 opens every run as the orchestrator
  for (NodeId n = 0; n < opts.num_nodes; ++n) {
    rpc_->Bind(n, MsgKind::kControl, [this](const RpcLayer::Inbound& in) { OnControl(in); });
    rpc_->Bind(n, MsgKind::kVcpuMigration,
               [this](const RpcLayer::Inbound& in) { OnVcpuCtl(in); });
    rpc_->Bind(n, MsgKind::kCheckpointData,
               [this](const RpcLayer::Inbound& in) { HandleJournal(in); });
    rpc_->Bind(n, MsgKind::kDsmReadReq,
               [this](const RpcLayer::Inbound& in) { OnPageRequest(in); });
    rpc_->Bind(n, MsgKind::kDsmPageData,
               [this](const RpcLayer::Inbound& in) { OnPageReply(in); });
  }
}

// Computes one admission wave's (arrival instant, vm) schedule. Wave 0 of a
// fresh run uses the trace's absolute timestamps; every later wave — and
// every wave of a restored run — keeps the trace's inter-arrival gaps but
// starts one full link latency past the drained queue's end, which keeps
// every resulting send legal against the parallel core's horizon.
void Marketplace::BuildWaveSchedule(int wave) {
  wave_sched_.clear();
  const size_t n = arrivals_.size();
  const size_t per = (n + static_cast<size_t>(opts_.epochs) - 1) / static_cast<size_t>(opts_.epochs);
  const size_t begin = static_cast<size_t>(wave) * per;
  const size_t end = std::min(n, begin + per);
  if (begin >= end) return;
  const TimeNs now = ploop_->now_max();
  const TimeNs base = now == 0 ? 0 : now + opts_.link.latency + 1;
  const TimeNs first = arrivals_[begin].time;
  for (size_t i = begin; i < end; ++i) {
    const VmArrival& a = arrivals_[i];
    const TimeNs at = now == 0 ? a.time : base + (a.time - first);
    wave_sched_.emplace_back(at, a.vm);
  }
}

void Marketplace::ScheduleWave() {
  arrivals_pending_ = wave_sched_.size();
  const NodeId m = orch_node_;
  for (const std::pair<TimeNs, uint64_t>& ws : wave_sched_) {
    const TimeNs at = ws.first;
    const uint64_t vmid = ws.second;
    NodeLoop(m)->ScheduleAt(at, [this, vmid, m] {
      if (faulty_ && !RoleIntact(m, NodeLoop(m)->now())) return;
      if (vms_[vmid - 1].status != VmStatus::kPending) return;
      --arrivals_pending_;
      OnArrival(vmid);
    });
  }
}

// Scheduled before the wave's arrivals at the same instant (same-time FIFO),
// so the kickoff refreshes the orchestrator's liveness view and arms the
// failover machinery before the first admission decision.
void Marketplace::ScheduleKickoff() {
  const NodeId m = orch_node_;
  NodeLoop(m)->ScheduleAt(wave_sched_.front().first, [this, m] {
    if (!RoleIntact(m, NodeLoop(m)->now())) return;
    WaveKickoff(m);
  });
}

void Marketplace::RunEngine() { events_ += ploop_->Run(); }

bool Marketplace::WaveTerminal(int wave) const {
  const size_t n = arrivals_.size();
  const size_t per = (n + static_cast<size_t>(opts_.epochs) - 1) / static_cast<size_t>(opts_.epochs);
  const size_t end = std::min(n, (static_cast<size_t>(wave) + 1) * per);
  for (size_t i = 0; i < end; ++i) {
    const VmStatus st = vms_[arrivals_[i].vm - 1].status;
    if (st != VmStatus::kDone && st != VmStatus::kFailed) return false;
  }
  return true;
}

void Marketplace::CheckWaveDrained(int wave) {
  FV_CHECK(waiting_.empty());
  FV_CHECK(!reclaim_in_flight_);
  FV_CHECK_EQ(leases_->ActiveLeases(), 0);
  for (const TenantLedger& l : ledgers_) {
    FV_CHECK_EQ(l.num_tenants(), 0);
  }
  const size_t n = arrivals_.size();
  const size_t per = (n + static_cast<size_t>(opts_.epochs) - 1) / static_cast<size_t>(opts_.epochs);
  const size_t end = std::min(n, (static_cast<size_t>(wave) + 1) * per);
  for (size_t i = 0; i < end; ++i) {
    const VmStatus st = vms_[arrivals_[i].vm - 1].status;
    FV_CHECK(st == VmStatus::kDone || (faulty_ && st == VmStatus::kFailed));
  }
}

// Wave-start backstop, engine stopped: if the orchestrator role died in a
// previous wave (or between waves) no event can elect a successor, so the
// driver does — deterministically, onto the lowest surviving node.
void Marketplace::WavePrep() {
  const TimeNs t = ploop_->now_max();
  if (!RoleIntact(orch_node_, t)) {
    NodeId m = kInvalidNode;
    for (NodeId n = 0; n < opts_.num_nodes; ++n) {
      if (plan_->NodeUp(n, t)) {
        m = n;
        break;
      }
    }
    FV_CHECK_NE(m, kInvalidNode);  // a wholly-dead cluster cannot make progress
    ++failovers_;
    orch_node_ = m;
    nodes_[static_cast<size_t>(m)].orch_since = t;
    leases_->FailoverReset(m);
    for (NodeRt& nr : nodes_) nr.orch_view = m;
  }
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    believed_up_[static_cast<size_t>(n)] = plan_->NodeUp(n, t) ? 1 : 0;
  }
  successor_ = kInvalidNode;
  beats_active_ = probes_active_ = false;
  takeover_active_ = false;
  deferred_dones_.clear();
}

// Stopped-engine recovery backstop: the wave's events drained but some VMs
// are not terminal (the orchestrator died with no armed successor, arrivals
// were gated away, done notices never landed, or survivors cannot fit a
// waiting tenant). Reconciles to a state from which the wave either makes
// progress or every stuck VM is failed exactly once.
void Marketplace::DriverRecover(int wave) {
  (void)wave;
  const TimeNs t = ploop_->now_max() + 1;
  bool changed = false;

  if (!RoleIntact(orch_node_, ploop_->now_max())) {
    NodeId m = kInvalidNode;
    for (NodeId n = 0; n < opts_.num_nodes; ++n) {
      if (plan_->NodeUp(n, ploop_->now_max())) {
        m = n;
        break;
      }
    }
    FV_CHECK_NE(m, kInvalidNode);
    ++failovers_;
    orch_node_ = m;
    nodes_[static_cast<size_t>(m)].orch_since = t;
    leases_->FailoverReset(m);
    for (NodeRt& nr : nodes_) nr.orch_view = m;
    changed = true;
  }
  successor_ = kInvalidNode;
  beats_active_ = probes_active_ = false;
  takeover_active_ = false;
  takeover_crash_t_ = -1;
  takeover_reports_.clear();
  deferred_dones_.clear();
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    const uint8_t up = plan_->NodeUp(n, ploop_->now_max()) ? 1 : 0;
    if (up != believed_up_[static_cast<size_t>(n)]) changed = true;  // e.g. a rejoin adds capacity
    believed_up_[static_cast<size_t>(n)] = up;
  }

  // The book and ledgers are rebuilt from the VM table (the drained engine
  // froze everything; entries referencing in-flight protocol legs are moot).
  for (size_t n = 0; n < ledgers_.size(); ++n) {
    ledgers_[n] = TenantLedger();
    ledgers_[n].Init(opts_.mem_per_node, opts_.vcpus_per_node);
  }
  reclaim_in_flight_ = false;
  pending_reclaim_lease_ = kInvalidLease;
  running_count_ = 0;
  arrivals_pending_ = 0;

  for (size_t i = 0; i < vms_.size(); ++i) {
    VmRun& run = vms_[i];
    if (run.status != VmStatus::kRunning) continue;
    changed = true;
    for (const LeaseId id : run.leases) leases_->Drop(id);
    run.leases.clear();
    // The home's own record decides: a drained engine means its done notice
    // can never arrive, so the driver reads the frozen truth directly.
    if (believed_up_[static_cast<size_t>(run.home)] && run.home_done) {
      run.status = VmStatus::kDone;
      run.finished = std::max(run.home_finished, t);
      ++vms_completed_;
    } else {
      run.status = VmStatus::kFailed;
      run.fail_reason = static_cast<uint8_t>(believed_up_[static_cast<size_t>(run.home)]
                                                 ? VmFailReason::kOrchLost
                                                 : VmFailReason::kHomeCrash);
      run.finished = t;
      ++vms_failed_;
    }
  }

  // Arrivals whose timer fired on a dead orchestrator's partition were gated
  // away; replay them at or after the recovery instant.
  for (const std::pair<TimeNs, uint64_t>& ws : wave_sched_) {
    const uint64_t vmid = ws.second;
    if (vms_[vmid - 1].status != VmStatus::kPending) continue;
    const TimeNs at = std::max(ws.first, t);
    const NodeId m = orch_node_;
    ++arrivals_pending_;
    changed = true;
    NodeLoop(m)->ScheduleAt(at, [this, vmid, m] {
      if (!RoleIntact(m, NodeLoop(m)->now())) return;
      if (vms_[vmid - 1].status != VmStatus::kPending) return;
      --arrivals_pending_;
      OnArrival(vmid);
    });
  }

  if (!changed) {
    // Nothing moved and nothing will: the surviving cluster can never fit
    // the waiting tenants.
    for (const uint64_t vmid : waiting_) {
      VmRun& run = vms_[vmid - 1];
      FV_CHECK(run.status == VmStatus::kWaiting);
      run.status = VmStatus::kFailed;
      run.fail_reason = static_cast<uint8_t>(VmFailReason::kCapacity);
      run.finished = t;
      ++vms_failed_;
    }
    waiting_.clear();
  }

  const NodeId m = orch_node_;
  NodeLoop(m)->ScheduleAt(t, [this, m] {
    if (!RoleIntact(m, NodeLoop(m)->now())) return;
    WaveKickoff(m);
  });
}

// --- Orchestrator (everything below until the failover section runs on the
// orchestrator node's partition exclusively) ---

void Marketplace::OnArrival(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  FV_CHECK(run.status == VmStatus::kPending);
  run.status = VmStatus::kWaiting;
  run.submitted = OrchNow();
  waiting_.push_back(vm);
  TryAdmitAll();
}

void Marketplace::TryAdmitAll() {
  // Admission pauses while a reclamation round trip is in flight: its ledger
  // move is already decided and must not race a fresh admission for the same
  // capacity.
  if (reclaim_in_flight_) return;
  while (!waiting_.empty()) {
    const uint64_t vm = waiting_.front();
    if (TryAdmit(vm)) {
      waiting_.pop_front();
      continue;
    }
    VmRun& run = vms_[vm - 1];
    if (!run.was_delayed) {
      run.was_delayed = true;
      ++delayed_;
    }
    if (opts_.reclamation && TryReclaim()) return;  // resume on the handback
    return;  // head-of-line waits; completions re-trigger admission
  }
}

bool Marketplace::TryAdmit(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  std::vector<NodeCapacityView> views;
  views.reserve(ledgers_.size());
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    // Nodes the orchestrator believes dead lend nothing and home nobody.
    if (faulty_ && !believed_up_[static_cast<size_t>(n)]) continue;
    const TenantLedger& l = ledgers_[static_cast<size_t>(n)];
    views.push_back(NodeCapacityView{n, l.free_vcpus(), l.free_mem(), l.vcpu_capacity(),
                                     l.mem_capacity(), l.num_tenants()});
  }
  const std::map<NodeId, int> alloc = policy_->Place(views, run.vcpus, run.mem_per_slot);
  if (alloc.empty()) return false;

  // Home = the largest slice (ties to the lowest node id).
  NodeId home = kInvalidNode;
  int home_slots = 0;
  for (const auto& [node, slots] : alloc) {
    if (slots > home_slots) {
      home = node;
      home_slots = slots;
    }
  }
  FV_CHECK_NE(home, kInvalidNode);

  // Reserve every slice against its ledger; the policy placed against the
  // same live view, so the checked path must succeed.
  run.alloc.clear();
  run.alloc.emplace_back(home, alloc.at(home));
  run.lenders.clear();
  for (const auto& [node, slots] : alloc) {
    const bool ok = ledgers_[static_cast<size_t>(node)].Reserve(
        vm, static_cast<uint64_t>(slots) * run.mem_per_slot, slots);
    FV_CHECK(ok);
    if (node != home) {
      run.alloc.emplace_back(node, slots);
      run.lenders.push_back(node);
    }
  }
  run.span = static_cast<int>(run.alloc.size());

  // Stream runtime, written before the start notice so the home partition
  // reads it after the delivery barrier.
  run.home = home;
  run.rt.assign(static_cast<size_t>(run.vcpus), StreamRt{});
  for (int s = 0; s < run.vcpus; ++s) {
    StreamRt& st = run.rt[static_cast<size_t>(s)];
    st.rng = Rng(SplitMix(opts_.trace.seed ^ (vm << 8) ^ static_cast<uint64_t>(s)));
    st.remaining = run.requests_per_stream;
  }
  run.live_streams = run.vcpus;

  // Every non-home slice is covered by a lease so the orchestrator can later
  // call it home (consolidation) through the lease protocol.
  run.leases.clear();
  for (const auto& [node, slots] : run.alloc) {
    if (node == home) continue;
    run.leases.push_back(leases_->Grant(node, home, LeaseKind::kMemory,
                                        static_cast<uint64_t>(slots), vm, Handback()));
  }

  run.status = VmStatus::kRunning;
  run.started = OrchNow();
  ++running_count_;
  if (run.alloc.size() == 1) {
    ++placed_single_;
  } else {
    ++placed_aggregate_;
  }
  SampleSeries();
  if (faulty_) Journal(kJrnAdmit, vm, 0);

  RpcLayer::CallOpts o;
  o.token = PackCtl(kOpStart, vm, 0);
  if (faulty_) {
    const NodeId me = orch_node_;
    o.on_fail = [this, home, me] {  // runs on the orchestrator's partition
      if (!RoleIntact(me, NodeLoop(me)->now()) || takeover_active_) return;
      if (believed_up_[static_cast<size_t>(home)]) DeclareNodeDead(home, /*record=*/true);
    };
  }
  rpc_->Notify(orch_node_, home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  return true;
}

// Cross-VM reclamation: find a running tenant with a lender slice whose home
// node has since freed enough capacity to absorb it, and revoke that lease —
// consolidating tenant A onto fewer nodes so the freed lender can admit
// tenant B. One revoke in flight at a time; the handback resumes admission.
bool Marketplace::TryReclaim() {
  FV_CHECK(!reclaim_in_flight_);
  for (size_t i = 0; i < vms_.size(); ++i) {
    const VmRun& run = vms_[i];
    if (run.status != VmStatus::kRunning || run.leases.empty()) continue;
    for (const LeaseId id : run.leases) {
      const Lease* lease = leases_->Find(id);
      if (lease == nullptr || !lease->active) continue;
      if (faulty_ && (!believed_up_[static_cast<size_t>(lease->lender)] ||
                      !believed_up_[static_cast<size_t>(lease->borrower)])) {
        continue;  // a failure verdict is already in flight for this tenant
      }
      const int slots = static_cast<int>(lease->resource);
      const uint64_t bytes = static_cast<uint64_t>(slots) * run.mem_per_slot;
      const TenantLedger& home_ledger = ledgers_[static_cast<size_t>(lease->borrower)];
      if (home_ledger.free_vcpus() >= slots && home_ledger.free_mem() >= bytes) {
        reclaim_in_flight_ = true;
        pending_reclaim_lease_ = id;
        leases_->Revoke(id);
        return true;
      }
    }
  }
  return false;
}

void Marketplace::OnLeaseEvent(const Lease& lease, LeaseEvent event) {
  if (event == LeaseEvent::kLost) {
    RecoverLostLender(lease);
    return;
  }
  if (event != LeaseEvent::kRevoked) return;  // kReleased: voluntary, no-op
  const uint64_t vm = lease.vm;
  VmRun& run = vms_[vm - 1];
  // The handback only fires while the lease is live, and a completing or
  // failing VM retires its leases first — so the victim is still running.
  FV_CHECK(run.status == VmStatus::kRunning);
  const NodeId lender = lease.lender;
  const NodeId home = lease.borrower;
  const int slots = static_cast<int>(lease.resource);
  const uint64_t bytes = static_cast<uint64_t>(slots) * run.mem_per_slot;

  ledgers_[static_cast<size_t>(lender)].Release(vm, bytes, slots);
  const bool ok = ledgers_[static_cast<size_t>(home)].Reserve(vm, bytes, slots);
  FV_CHECK(ok);  // admissions were paused; completions only freed capacity

  for (auto it = run.alloc.begin(); it != run.alloc.end(); ++it) {
    if (it->first == lender) {
      run.alloc.erase(it);
      break;
    }
  }
  FV_CHECK(!run.alloc.empty() && run.alloc.front().first == home);
  run.alloc.front().second += slots;
  run.span = static_cast<int>(run.alloc.size());
  run.leases.erase(std::find(run.leases.begin(), run.leases.end(), lease.id));
  ++reclaims_;
  reclaim_in_flight_ = false;
  pending_reclaim_lease_ = kInvalidLease;
  SampleSeries();

  // Tell the home partition to stop routing requests at the ex-lender.
  RpcLayer::CallOpts o;
  o.token = PackCtl(kOpCallHome, vm, static_cast<uint64_t>(lender));
  rpc_->Notify(orch_node_, home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  TryAdmitAll();
}

// A lease protocol leg gave up: tenant-aware surgical recovery. When the
// *lender* died, only this tenant's slice moves — re-placed onto a survivor
// when one has room (lender replacement) or dropped so the VM degrades to
// its remaining slices; co-tenants of the dead lender recover through their
// own leases, and no other tenant is touched. When the give-up was really
// the *borrower* (the VM's home) dying, the home-crash path fails exactly
// that VM instead.
void Marketplace::RecoverLostLender(const Lease& lease) {
  const uint64_t vm = lease.vm;
  VmRun& run = vms_[vm - 1];
  if (lease.id == pending_reclaim_lease_) {
    reclaim_in_flight_ = false;
    pending_reclaim_lease_ = kInvalidLease;
  }
  auto lit = std::find(run.leases.begin(), run.leases.end(), lease.id);
  if (lit != run.leases.end()) run.leases.erase(lit);
  if (run.status != VmStatus::kRunning) return;

  const TimeNs now = OrchNow();
  const NodeId home = run.home;
  if (!NodeUpAt(home, now)) {
    // The failed leg was home-bound: the borrower died, not the lender.
    if (believed_up_[static_cast<size_t>(home)]) DeclareNodeDead(home, /*record=*/true);
    return;
  }

  const NodeId lender = lease.lender;
  const int slots = static_cast<int>(lease.resource);
  const uint64_t bytes = static_cast<uint64_t>(slots) * run.mem_per_slot;
  ledgers_[static_cast<size_t>(lender)].Release(vm, bytes, slots);
  for (auto it = run.alloc.begin(); it != run.alloc.end(); ++it) {
    if (it->first == lender) {
      run.alloc.erase(it);
      break;
    }
  }

  // Lowest surviving node with room that is not already part of the VM.
  NodeId target = kInvalidNode;
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    if (!believed_up_[static_cast<size_t>(n)] || !NodeUpAt(n, now)) continue;
    bool member = n == home;
    for (const auto& [an, as] : run.alloc) member = member || an == n;
    if (member) continue;
    const TenantLedger& l = ledgers_[static_cast<size_t>(n)];
    if (l.free_vcpus() >= slots && l.free_mem() >= bytes) {
      target = n;
      break;
    }
  }
  if (target != kInvalidNode) {
    const bool ok = ledgers_[static_cast<size_t>(target)].Reserve(vm, bytes, slots);
    FV_CHECK(ok);
    run.alloc.emplace_back(target, slots);
    run.leases.push_back(leases_->Grant(target, home, LeaseKind::kMemory,
                                        static_cast<uint64_t>(slots), vm, Handback()));
    ++lender_replacements_;
    RpcLayer::CallOpts o;
    o.token = PackWide(kOpReplaceLender, vm, static_cast<uint64_t>(lender),
                       static_cast<uint64_t>(target));
    rpc_->Notify(orch_node_, home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  } else {
    // Graceful degradation: the VM keeps running on its surviving slices.
    ++lender_degradations_;
    RpcLayer::CallOpts o;
    o.token = PackCtl(kOpDropLender, vm, static_cast<uint64_t>(lender));
    rpc_->Notify(orch_node_, home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  }
  run.span = static_cast<int>(run.alloc.size());
  const TimeNs crash_t = plan_->LastCrashBefore(lender, now);
  if (crash_t >= 0) recovery_ns_.Record(static_cast<double>(now - crash_t));
  SampleSeries();
  if (believed_up_[static_cast<size_t>(lender)] && !NodeUpAt(lender, now)) {
    DeclareNodeDead(lender, /*record=*/true);
  }
  TryAdmitAll();
}

void Marketplace::OnVmDone(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  if (faulty_) {
    if (takeover_active_) {
      // The interrogation decides terminal states; replay afterwards.
      deferred_dones_.push_back(vm);
      return;
    }
    if (run.status != VmStatus::kRunning) {
      ++late_dones_;  // completion raced a failure verdict (or a dup)
      return;
    }
  }
  FV_CHECK(run.status == VmStatus::kRunning);
  run.status = VmStatus::kDone;
  run.finished = OrchNow();
  ++vms_completed_;
  --running_count_;
  if (faulty_) Journal(kJrnDone, vm, 0);
  for (const LeaseId id : run.leases) {
    if (id == pending_reclaim_lease_) {
      // The victim finished before the in-flight revoke resolved; the ack
      // leg's Terminate will find the book entry gone and no-op.
      reclaim_in_flight_ = false;
      pending_reclaim_lease_ = kInvalidLease;
    }
    const Lease* lease = leases_->Find(id);
    if (lease != nullptr && lease->active) {
      leases_->Release(id);
    } else {
      // Grant ack still in flight (tiny VMs can finish inside one RTT).
      leases_->Drop(id);
    }
  }
  run.leases.clear();
  for (const auto& [node, slots] : run.alloc) {
    ledgers_[static_cast<size_t>(node)].ReleaseAll(vm);
  }
  SampleSeries();
  TryAdmitAll();
}

void Marketplace::SampleSeries() {
  int used_nodes = 0;
  int committed = 0;
  int stranded = 0;
  for (const TenantLedger& l : ledgers_) {
    if (l.num_tenants() == 0) continue;
    ++used_nodes;
    committed += l.committed_vcpus();
    stranded += l.free_vcpus();
  }
  const double consol =
      used_nodes == 0 ? 0.0
                      : static_cast<double>(committed) /
                            static_cast<double>(used_nodes * opts_.vcpus_per_node);
  const TimeNs t = OrchNow();
  consolidation_.Append(t, consol);
  stranded_.Append(t, static_cast<double>(stranded));
}

// The live orchestrator turns one node's silence into a death verdict,
// exactly once per believed-up -> believed-down transition: every VM homed
// there fails (its co-tenants elsewhere are untouched), every lease the dead
// node lent triggers per-tenant lender recovery, and its ledger shares flow
// back for re-admission.
void Marketplace::DeclareNodeDead(NodeId n, bool record) {
  if (takeover_active_ || !believed_up_[static_cast<size_t>(n)]) return;
  believed_up_[static_cast<size_t>(n)] = 0;
  ++nodes_died_;
  const TimeNs now = OrchNow();
  if (record) {
    const TimeNs crash_t = plan_->LastCrashBefore(n, now);
    if (crash_t >= 0) detection_ns_.Record(static_cast<double>(now - crash_t));
  }
  Journal(kJrnDead, 0, static_cast<uint64_t>(n));
  for (size_t i = 0; i < vms_.size(); ++i) {
    if (vms_[i].status == VmStatus::kRunning && vms_[i].home == n) {
      FailVm(i + 1, VmFailReason::kHomeCrash, now);
    }
  }
  // Remaining book entries touching n have n as lender (home-crash cleanup
  // above dropped the dead node's borrowed leases); each kLost handback runs
  // the surgical per-tenant recovery.
  leases_->OnNodeFailure(n);
  if (n == successor_) {
    PickSuccessor();
    ResyncShadow();
  }
  TryAdmitAll();
}

void Marketplace::FailVm(uint64_t vm, VmFailReason reason, TimeNs now) {
  VmRun& run = vms_[vm - 1];
  FV_CHECK(run.status == VmStatus::kRunning);
  run.status = VmStatus::kFailed;
  run.fail_reason = static_cast<uint8_t>(reason);
  run.finished = now;
  ++vms_failed_;
  --running_count_;
  for (const LeaseId id : run.leases) {
    if (id == pending_reclaim_lease_) {
      reclaim_in_flight_ = false;
      pending_reclaim_lease_ = kInvalidLease;
    }
    leases_->Drop(id);
  }
  run.leases.clear();
  for (const auto& [node, slots] : run.alloc) {
    ledgers_[static_cast<size_t>(node)].ReleaseAll(vm);
  }
  Journal(kJrnFail, vm, static_cast<uint64_t>(run.fail_reason));
  SampleSeries();
}

// --- Orchestrator failover: journal replication, heartbeats, takeover ---

void Marketplace::Journal(uint64_t op, uint64_t vm, uint64_t arg) {
  if (successor_ == kInvalidNode) return;
  ++journal_records_;
  RpcLayer::CallOpts o;
  o.token = PackCtl(op, vm, arg);
  const NodeId me = orch_node_;
  const NodeId s = successor_;
  o.on_fail = [this, me, s] {
    if (!RoleIntact(me, NodeLoop(me)->now()) || takeover_active_) return;
    if (believed_up_[static_cast<size_t>(s)]) DeclareNodeDead(s, /*record=*/true);
  };
  rpc_->Notify(me, s, MsgKind::kCheckpointData, kJournalBytes, std::move(o));
}

void Marketplace::PickSuccessor() {
  successor_ = kInvalidNode;
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    if (n != orch_node_ && believed_up_[static_cast<size_t>(n)]) {
      successor_ = n;
      return;
    }
  }
}

// Ships the successor a full picture: Hello (re-anchors the detector and
// clears the shadow), one record per VM already terminal or running, one per
// believed-dead node. Idle orchestrators skip the sync — an armed monitor
// with no future beats would only fire a spurious takeover.
void Marketplace::ResyncShadow() {
  if (!faulty_ || successor_ == kInvalidNode || Outstanding() == 0) return;
  Journal(kJrnHello, 0, static_cast<uint64_t>(orch_node_));
  for (size_t i = 0; i < vms_.size(); ++i) {
    switch (vms_[i].status) {
      case VmStatus::kRunning: Journal(kJrnAdmit, i + 1, 0); break;
      case VmStatus::kDone: Journal(kJrnDone, i + 1, 0); break;
      case VmStatus::kFailed: Journal(kJrnFail, i + 1, vms_[i].fail_reason); break;
      default: break;
    }
  }
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    if (!believed_up_[static_cast<size_t>(n)]) Journal(kJrnDead, 0, static_cast<uint64_t>(n));
  }
}

void Marketplace::EnsureFailoverActive(NodeId me) {
  if (!faulty_ || successor_ == kInvalidNode || Outstanding() == 0) return;
  if (!beats_active_) {
    beats_active_ = true;
    NodeLoop(me)->ScheduleAfter(opts_.failover.heartbeat_ns, [this, me] { BeatChain(me); });
  }
  if (!probes_active_) {
    probes_active_ = true;
    NodeLoop(me)->ScheduleAfter(opts_.failover.probe_interval_ns, [this, me] { ProbeChain(me); });
  }
}

void Marketplace::BeatChain(NodeId me) {
  if (!RoleIntact(me, NodeLoop(me)->now())) return;  // crashed reign: chain dies silently
  if (successor_ == kInvalidNode) {
    beats_active_ = false;
    return;
  }
  if (Outstanding() == 0) {
    // Quiesce precedes every wave boundary: the successor's monitor disarms
    // before the engine can drain, so resumed and uninterrupted runs place
    // the same events either side of the boundary.
    beats_active_ = false;
    Journal(kJrnQuiesce, 0, 0);
    return;
  }
  rpc_->Datagram(me, successor_, MsgKind::kControl, kBeatBytes, nullptr, 0,
                 PackCtl(kOpBeat, 0, 0));
  NodeLoop(me)->ScheduleAfter(opts_.failover.heartbeat_ns, [this, me] { BeatChain(me); });
}

// The reliable channel's give-up (max_attempts over the backoff ceiling) IS
// the failure detector for everyone but the orchestrator itself: a probe
// that exhausts its budget against a silent peer declares it dead.
void Marketplace::ProbeChain(NodeId me) {
  if (!RoleIntact(me, NodeLoop(me)->now())) return;
  if (Outstanding() == 0) {
    probes_active_ = false;
    return;
  }
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    if (n == me || !believed_up_[static_cast<size_t>(n)]) continue;
    RpcLayer::CallOpts o;
    o.token = PackCtl(kOpPing, 0, 0);
    o.on_fail = [this, me, n] {
      if (!RoleIntact(me, NodeLoop(me)->now()) || takeover_active_) return;
      if (believed_up_[static_cast<size_t>(n)]) DeclareNodeDead(n, /*record=*/true);
    };
    rpc_->Notify(me, n, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  }
  NodeLoop(me)->ScheduleAfter(opts_.failover.probe_interval_ns, [this, me] { ProbeChain(me); });
}

// Successor side: every journal record lands here (reliable, but FIFO does
// not survive drop+retransmit, so the shadow tolerates reorder — divergence
// is measured at takeover, not trusted blindly).
void Marketplace::HandleJournal(const RpcLayer::Inbound& in) {
  NodeRt& me = nodes_[static_cast<size_t>(in.dst)];
  const uint64_t op = CtlOp(in.token);
  const TimeNs now = NodeLoop(in.dst)->now();
  switch (op) {
    case kJrnHello: {
      me.watching = in.src;
      me.monitor = PhiAccrualEstimator(opts_.failover.heartbeat_ns, opts_.failover.phi_window);
      me.monitor.Reset(now);
      me.monitor_epoch = now;
      me.monitor_armed = true;
      me.shadow.assign(vms_.size(), static_cast<uint8_t>(VmStatus::kPending));
      me.shadow_up.assign(static_cast<size_t>(opts_.num_nodes), 1);
      if (!me.monitor_check_running) {
        me.monitor_check_running = true;
        const NodeId n = in.dst;
        NodeLoop(n)->ScheduleAfter(opts_.failover.heartbeat_ns, [this, n] { MonitorCheck(n); });
      }
      break;
    }
    case kJrnAdmit:
      if (!me.shadow.empty()) me.shadow[CtlVm(in.token) - 1] = static_cast<uint8_t>(VmStatus::kRunning);
      break;
    case kJrnDone:
      if (!me.shadow.empty()) me.shadow[CtlVm(in.token) - 1] = static_cast<uint8_t>(VmStatus::kDone);
      break;
    case kJrnFail:
      if (!me.shadow.empty()) me.shadow[CtlVm(in.token) - 1] = static_cast<uint8_t>(VmStatus::kFailed);
      break;
    case kJrnDead:
      if (!me.shadow_up.empty()) me.shadow_up[CtlArg(in.token)] = 0;
      break;
    case kJrnQuiesce:
      me.monitor_armed = false;
      break;
    default:
      FV_CHECK(false);
  }
}

// Self-rescheduling detector check. Terminates unconditionally: phi grows
// without bound in silence, and the first phi >= threshold always disarms
// the chain — taking over only when the oracle confirms a real crash
// (a partitioned-but-alive orchestrator keeps the role; split-brain never
// happens, at the price of riding out the partition).
void Marketplace::MonitorCheck(NodeId me) {
  NodeRt& nr = nodes_[static_cast<size_t>(me)];
  const TimeNs now = NodeLoop(me)->now();
  if (!NodeUpAt(me, now) || plan_->LastCrashBefore(me, now) >= nr.monitor_epoch) {
    // This successor incarnation died (the state is stale after a restart).
    nr.monitor_armed = false;
    nr.monitor_check_running = false;
    return;
  }
  if (!nr.monitor_armed) {
    nr.monitor_check_running = false;
    return;
  }
  if (nr.monitor.Phi(now) >= opts_.failover.fail_phi) {
    nr.monitor_armed = false;
    nr.monitor_check_running = false;
    if (!plan_->NodeUp(nr.watching, now)) {
      const TimeNs crash_t = plan_->LastCrashBefore(nr.watching, now);
      detection_ns_.Record(static_cast<double>(now - crash_t));
      // The dead orchestrator's in-flight sends all fail (on its partition)
      // within the retry horizon; only then is its state frozen and safe to
      // reconstruct from.
      const TimeNs epoch = nr.monitor_epoch;
      const TimeNs at = std::max(now + 1, crash_t + SettleDelay());
      NodeLoop(me)->ScheduleAt(at, [this, me, crash_t, epoch] {
        StartTakeover(me, crash_t, epoch);
      });
    }
    return;
  }
  NodeLoop(me)->ScheduleAfter(opts_.failover.heartbeat_ns, [this, me] { MonitorCheck(me); });
}

void Marketplace::StartTakeover(NodeId me, TimeNs crash_t, TimeNs epoch) {
  const TimeNs now = NodeLoop(me)->now();
  if (!NodeUpAt(me, now) || plan_->LastCrashBefore(me, now) >= epoch) return;
  NodeRt& nr = nodes_[static_cast<size_t>(me)];
  ++failovers_;
  nr.orch_since = now;
  orch_node_ = me;
  nr.orch_view = me;
  takeover_active_ = true;
  takeover_crash_t_ = crash_t;
  successor_ = kInvalidNode;
  beats_active_ = probes_active_ = false;

  // Score the journal against the dead orchestrator's frozen state (the
  // metrics-store exemption: past the settle horizon the fields cannot
  // change, so reading them cross-partition is deterministic), then adopt
  // the frozen state as ground truth.
  for (size_t i = 0; i < vms_.size(); ++i) {
    const uint8_t truth = static_cast<uint8_t>(vms_[i].status);
    if (i < nr.shadow.size() && nr.shadow[i] != truth) ++shadow_divergence_;
  }
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    const uint8_t truth = believed_up_[static_cast<size_t>(n)];
    if (static_cast<size_t>(n) < nr.shadow_up.size() && nr.shadow_up[static_cast<size_t>(n)] != truth) {
      ++shadow_divergence_;
    }
  }
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    if (believed_up_[static_cast<size_t>(n)] && !plan_->NodeUp(n, now)) {
      believed_up_[static_cast<size_t>(n)] = 0;
      ++nodes_died_;
    }
  }

  leases_->FailoverReset(me);
  takeover_reports_.clear();
  deferred_dones_.clear();
  takeover_expect_.assign(static_cast<size_t>(opts_.num_nodes), -3);
  takeover_have_.assign(static_cast<size_t>(opts_.num_nodes), 0);

  // Interrogate every believed-up peer for its live homed VMs. Completion is
  // counted (expected vs received), never inferred from arrival order —
  // per-link FIFO does not survive drop + retransmit.
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    if (n == me || !believed_up_[static_cast<size_t>(n)]) continue;
    takeover_expect_[static_cast<size_t>(n)] = -2;
    RpcLayer::CallOpts nops;
    nops.token = PackCtl(kOpNewOrch, 0, static_cast<uint64_t>(me));
    rpc_->Notify(me, n, MsgKind::kVcpuMigration, kCtrlBytes, std::move(nops));
    RpcLayer::CallOpts q;
    q.token = PackCtl(kOpQuery, 0, 0);
    q.on_fail = [this, me, n] {
      if (!takeover_active_ || orch_node_ != me) return;
      if (believed_up_[static_cast<size_t>(n)]) {
        believed_up_[static_cast<size_t>(n)] = 0;
        ++nodes_died_;
      }
      takeover_expect_[static_cast<size_t>(n)] = -1;
      MaybeFinishTakeover(me);
    };
    rpc_->Notify(me, n, MsgKind::kVcpuMigration, kCtrlBytes, std::move(q));
  }
  // The new orchestrator reports its own homed VMs directly.
  for (const uint64_t vm : nr.homed_vms) {
    const VmRun& run = vms_[vm - 1];
    if (!StreamLive(run, now)) continue;
    takeover_reports_.emplace_back(vm, run.home_done ? 1 : 0);
  }
  MaybeFinishTakeover(me);
}

void Marketplace::HandleQuery(const RpcLayer::Inbound& in) {
  const NodeId n = in.dst;
  const TimeNs now = NodeLoop(n)->now();
  uint64_t count = 0;
  for (const uint64_t vm : nodes_[static_cast<size_t>(n)].homed_vms) {
    const VmRun& run = vms_[vm - 1];
    if (!StreamLive(run, now)) continue;  // a restarted home disowns pre-crash VMs
    RpcLayer::CallOpts o;
    o.token = PackCtl(kOpQVm, vm, run.home_done ? 1 : 0);
    rpc_->Notify(n, in.src, MsgKind::kControl, kCtrlBytes, std::move(o));
    ++count;
  }
  RpcLayer::CallOpts t;
  t.token = PackCtl(kOpQueryDone, 0, count);
  rpc_->Notify(n, in.src, MsgKind::kControl, kCtrlBytes, std::move(t));
}

void Marketplace::MaybeFinishTakeover(NodeId me) {
  if (!takeover_active_) return;
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    const int32_t expect = takeover_expect_[static_cast<size_t>(n)];
    if (expect == -2) return;  // trailer still outstanding
    if (expect >= 0 && takeover_have_[static_cast<size_t>(n)] < expect) return;
  }
  FinishTakeover(me);
}

// Reconciliation: rebuild ledgers and the lease book from the frozen VM
// table plus the interrogation reports, fail VMs whose home died with the
// old orchestrator's reign, re-place or degrade slices lost on dead lenders,
// and resume the wave.
void Marketplace::FinishTakeover(NodeId me) {
  takeover_active_ = false;
  const TimeNs now = NodeLoop(me)->now();
  for (size_t n = 0; n < ledgers_.size(); ++n) {
    ledgers_[n] = TenantLedger();
    ledgers_[n].Init(opts_.mem_per_node, opts_.vcpus_per_node);
  }
  reclaim_in_flight_ = false;
  pending_reclaim_lease_ = kInvalidLease;
  running_count_ = 0;
  arrivals_pending_ = 0;

  std::vector<int8_t> rep(vms_.size(), -1);
  for (const std::pair<uint64_t, uint8_t>& r : takeover_reports_) {
    rep[r.first - 1] = static_cast<int8_t>(r.second);
  }

  for (size_t i = 0; i < vms_.size(); ++i) {
    VmRun& run = vms_[i];
    const uint64_t vm = i + 1;
    if (run.status != VmStatus::kRunning) continue;
    run.leases.clear();  // the old book died with its home; ids are void
    if (!believed_up_[static_cast<size_t>(run.home)]) {
      run.status = VmStatus::kFailed;
      run.fail_reason = static_cast<uint8_t>(VmFailReason::kHomeCrash);
      run.finished = now;
      ++vms_failed_;
      continue;
    }
    if (rep[i] == 1) {
      // Finished while the orchestrator seat was empty; count it now.
      run.status = VmStatus::kDone;
      run.finished = now;
      ++vms_completed_;
      continue;
    }
    // Still running: keep surviving slices, recover the rest per tenant.
    std::vector<std::pair<NodeId, int>> kept;
    std::vector<std::pair<NodeId, int>> lost;
    for (const std::pair<NodeId, int>& slice : run.alloc) {
      if (believed_up_[static_cast<size_t>(slice.first)] && plan_->NodeUp(slice.first, now)) {
        kept.push_back(slice);
      } else {
        lost.push_back(slice);
      }
    }
    FV_CHECK(!kept.empty() && kept.front().first == run.home);
    for (const std::pair<NodeId, int>& slice : kept) {
      const bool ok = ledgers_[static_cast<size_t>(slice.first)].Reserve(
          vm, static_cast<uint64_t>(slice.second) * run.mem_per_slot, slice.second);
      FV_CHECK(ok);
    }
    for (const std::pair<NodeId, int>& slice : lost) {
      const NodeId dead = slice.first;
      const int slots = slice.second;
      const uint64_t bytes = static_cast<uint64_t>(slots) * run.mem_per_slot;
      NodeId target = kInvalidNode;
      for (NodeId n = 0; n < opts_.num_nodes; ++n) {
        if (!believed_up_[static_cast<size_t>(n)] || !plan_->NodeUp(n, now)) continue;
        bool member = false;
        for (const auto& [kn, ks] : kept) member = member || kn == n;
        if (member) continue;
        const TenantLedger& l = ledgers_[static_cast<size_t>(n)];
        if (l.free_vcpus() >= slots && l.free_mem() >= bytes) {
          target = n;
          break;
        }
      }
      if (target != kInvalidNode) {
        const bool ok = ledgers_[static_cast<size_t>(target)].Reserve(vm, bytes, slots);
        FV_CHECK(ok);
        kept.emplace_back(target, slots);
        ++lender_replacements_;
        RpcLayer::CallOpts o;
        o.token = PackWide(kOpReplaceLender, vm, static_cast<uint64_t>(dead),
                           static_cast<uint64_t>(target));
        rpc_->Notify(me, run.home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
      } else {
        ++lender_degradations_;
        RpcLayer::CallOpts o;
        o.token = PackCtl(kOpDropLender, vm, static_cast<uint64_t>(dead));
        rpc_->Notify(me, run.home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
      }
    }
    if (!lost.empty() && takeover_crash_t_ >= 0) {
      recovery_ns_.Record(static_cast<double>(now - takeover_crash_t_));
    }
    run.alloc = std::move(kept);
    run.span = static_cast<int>(run.alloc.size());
    // Fresh leases in the rebuilt book for every surviving non-home slice.
    for (const std::pair<NodeId, int>& slice : run.alloc) {
      if (slice.first == run.home) continue;
      run.leases.push_back(leases_->Grant(slice.first, run.home, LeaseKind::kMemory,
                                          static_cast<uint64_t>(slice.second), vm, Handback()));
    }
    ++running_count_;
  }

  // Arrivals gated away on the dead orchestrator's partition replay here.
  for (const std::pair<TimeNs, uint64_t>& ws : wave_sched_) {
    const uint64_t vmid = ws.second;
    if (vms_[vmid - 1].status != VmStatus::kPending) continue;
    const TimeNs at = std::max(ws.first, now + 1);
    ++arrivals_pending_;
    NodeLoop(me)->ScheduleAt(at, [this, vmid, me] {
      if (!RoleIntact(me, NodeLoop(me)->now())) return;
      if (vms_[vmid - 1].status != VmStatus::kPending) return;
      --arrivals_pending_;
      OnArrival(vmid);
    });
  }

  PickSuccessor();
  ResyncShadow();
  const std::vector<uint64_t> dones = std::move(deferred_dones_);
  deferred_dones_.clear();
  for (const uint64_t vm : dones) OnVmDone(vm);
  SampleSeries();
  TryAdmitAll();
  EnsureFailoverActive(me);
}

// Wave-start housekeeping on the live orchestrator's partition: sync the
// liveness view with the oracle (nodes already crashed at wave start get no
// work; restarted nodes rejoin the pool), pick a successor, resync its
// shadow, arm beats + probes.
void Marketplace::WaveKickoff(NodeId me) {
  const TimeNs now = NodeLoop(me)->now();
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    const bool up = plan_->NodeUp(n, now);
    if (!up && believed_up_[static_cast<size_t>(n)]) {
      DeclareNodeDead(n, /*record=*/false);
    } else if (up && !believed_up_[static_cast<size_t>(n)]) {
      believed_up_[static_cast<size_t>(n)] = 1;  // rejoin with a fresh ledger
    }
  }
  PickSuccessor();
  ResyncShadow();
  EnsureFailoverActive(me);
  TryAdmitAll();
}

// --- Control-plane dispatch ---

void Marketplace::OnControl(const RpcLayer::Inbound& in) {
  if (!faulty_) {
    FV_CHECK_EQ(CtlOp(in.token), kOpVmDone);
    OnVmDone(CtlVm(in.token));
    return;
  }
  const uint64_t op = CtlOp(in.token);
  if (op == kOpBeat) {
    NodeRt& nr = nodes_[static_cast<size_t>(in.dst)];
    if (nr.monitor_armed && nr.watching == in.src) {
      nr.monitor.Observe(NodeLoop(in.dst)->now());
    }
    return;
  }
  if (!RoleIntact(in.dst, NodeLoop(in.dst)->now())) return;
  switch (op) {
    case kOpVmDone:
      OnVmDone(CtlVm(in.token));
      break;
    case kOpQVm:
      if (takeover_active_) {
        takeover_reports_.emplace_back(CtlVm(in.token), static_cast<uint8_t>(CtlArg(in.token)));
        ++takeover_have_[static_cast<size_t>(in.src)];
        MaybeFinishTakeover(in.dst);
      } else if (CtlArg(in.token) == 1) {
        OnVmDone(CtlVm(in.token));  // straggler report; tolerant path counts it
      }
      break;
    case kOpQueryDone:
      if (takeover_active_ && takeover_expect_[static_cast<size_t>(in.src)] == -2) {
        takeover_expect_[static_cast<size_t>(in.src)] = static_cast<int32_t>(CtlArg(in.token));
        MaybeFinishTakeover(in.dst);
      }
      break;
    default:
      break;  // late/duplicate control traffic from a previous reign
  }
}

void Marketplace::OnVcpuCtl(const RpcLayer::Inbound& in) {
  if (!faulty_) {
    if (CtlOp(in.token) == kOpStart) {
      OnVmStart(in);
    } else {
      FV_CHECK_EQ(CtlOp(in.token), kOpCallHome);
      OnCallHome(CtlVm(in.token), static_cast<NodeId>(CtlArg(in.token)));
    }
    return;
  }
  const uint64_t op = CtlOp(in.token);
  const TimeNs now = NodeLoop(in.dst)->now();
  switch (op) {
    case kOpStart:
      OnVmStart(in);
      break;
    case kOpCallHome: {
      const uint64_t vm = CtlVm(in.token);
      if (!StreamLive(vms_[vm - 1], now)) return;
      OnCallHome(vm, static_cast<NodeId>(CtlArg(in.token)));
      break;
    }
    case kOpNewOrch:
      nodes_[static_cast<size_t>(in.dst)].orch_view = in.src;
      break;
    case kOpQuery:
      HandleQuery(in);
      break;
    case kOpDropLender: {
      const uint64_t vm = CtlVm(in.token);
      VmRun& run = vms_[vm - 1];
      if (!StreamLive(run, now)) return;
      auto it = std::find(run.lenders.begin(), run.lenders.end(),
                          static_cast<NodeId>(CtlArg(in.token)));
      if (it != run.lenders.end()) run.lenders.erase(it);
      break;
    }
    case kOpReplaceLender: {
      const uint64_t vm = WideVm(in.token);
      VmRun& run = vms_[vm - 1];
      if (!StreamLive(run, now)) return;
      const NodeId dead = static_cast<NodeId>(WideA(in.token));
      const NodeId fresh = static_cast<NodeId>(WideB(in.token));
      auto it = std::find(run.lenders.begin(), run.lenders.end(), dead);
      if (it != run.lenders.end()) run.lenders.erase(it);
      if (std::find(run.lenders.begin(), run.lenders.end(), fresh) == run.lenders.end()) {
        run.lenders.push_back(fresh);
      }
      break;
    }
    case kOpPing:
      break;  // delivery alone is the liveness answer
    default:
      FV_CHECK(false);
  }
}

// --- Request streams (each VM's stream state runs on its home node's
// partition) ---

void Marketplace::OnVmStart(const RpcLayer::Inbound& in) {
  const uint64_t vm = CtlVm(in.token);
  VmRun& run = vms_[vm - 1];
  if (faulty_) {
    NodeRt& nr = nodes_[static_cast<size_t>(in.dst)];
    nr.orch_view = in.src;  // done notices go to whoever admitted us
    run.home_epoch = NodeLoop(in.dst)->now();
    run.home_done = false;
    run.home_finished = 0;
    run.done_attempts = 0;
    auto pos = std::lower_bound(nr.homed_vms.begin(), nr.homed_vms.end(), vm);
    if (pos == nr.homed_vms.end() || *pos != vm) nr.homed_vms.insert(pos, vm);
  }
  for (int s = 0; s < run.vcpus; ++s) {
    // Historical stagger: stream starts must not be one giant tie.
    const TimeNs start = Nanos(1 + static_cast<int64_t>((vm * 13 + static_cast<uint64_t>(s) * 7) % 97));
    NodeLoop(run.home)->ScheduleAfter(start, [this, vm, s] { DoRequest(vm, s); });
  }
}

void Marketplace::OnCallHome(uint64_t vm, NodeId lender) {
  VmRun& run = vms_[vm - 1];
  auto it = std::find(run.lenders.begin(), run.lenders.end(), lender);
  if (faulty_) {
    // Recovery may already have dropped/replaced this lender.
    if (it == run.lenders.end()) return;
  } else {
    FV_CHECK(it != run.lenders.end());
  }
  run.lenders.erase(it);
  ++nodes_[static_cast<size_t>(run.home)].c.reclaim_moves;
}

void Marketplace::DoRequest(uint64_t vm, int stream) {
  VmRun& run = vms_[vm - 1];
  const NodeId home = run.home;
  if (faulty_ && !StreamLive(run, NodeLoop(home)->now())) return;  // zombie timer
  StreamRt& st = run.rt[static_cast<size_t>(stream)];
  FV_DCHECK(st.remaining > 0);
  st.awaiting = true;
  st.issue = NodeLoop(home)->now();
  const bool remote = !run.lenders.empty() && st.rng.Chance(run.remote_frac);
  if (!remote) {
    ++nodes_[static_cast<size_t>(home)].c.local_requests;
    const TimeNs svc = opts_.service_ns + Nanos(static_cast<int64_t>(st.rng.UniformInt(0, 1023)));
    NodeLoop(home)->ScheduleAfter(svc, [this, vm, stream] { Complete(vm, stream); });
    return;
  }
  ++nodes_[static_cast<size_t>(home)].c.remote_requests;
  const size_t pick = static_cast<size_t>(st.rng.UniformInt(0, static_cast<int>(run.lenders.size()) - 1));
  const NodeId lender = run.lenders[pick];
  if (faulty_ && !plan_->NodeUp(lender, NodeLoop(home)->now())) {
    // Fast-fail against a known-dead lender: same rng draws as the wire
    // path, but no 8-attempt retry storm per request while recovery is
    // still re-placing the slice.
    ++nodes_[static_cast<size_t>(home)].c.request_failures;
    NodeLoop(home)->ScheduleAfter(opts_.service_ns, [this, vm, stream] { Complete(vm, stream); });
    return;
  }
  RpcLayer::CallOpts o;
  o.token = PackCtl(0, vm, static_cast<uint64_t>(stream));
  // One-sided read: the borrower pulls the page straight out of the lender's
  // registered slice — no lender CPU service, but the verb setup is paid on
  // the borrower before the read hits the wire.
  o.receiver_delay = opts_.rdma_read ? 0 : opts_.page_service_ns;
  o.on_fail = [this, vm, stream, home] {  // runs on home's partition
    ++nodes_[static_cast<size_t>(home)].c.request_failures;
    Complete(vm, stream);
  };
  if (opts_.rdma_read) {
    const TimeNs setup = fabric_->link_params(home, lender).one_sided_setup;
    NodeLoop(home)->ScheduleAfter(setup, [this, home, lender, o = std::move(o)]() mutable {
      rpc_->Notify(home, lender, MsgKind::kDsmReadReq, kReqBytes, std::move(o));
    });
    return;
  }
  rpc_->Notify(home, lender, MsgKind::kDsmReadReq, kReqBytes, std::move(o));
}

void Marketplace::OnPageRequest(const RpcLayer::Inbound& in) {
  if (!NodeUpAt(in.dst, NodeLoop(in.dst)->now())) return;  // dead lender serves nothing
  ++nodes_[static_cast<size_t>(in.dst)].c.served_pages;
  RpcLayer::CallOpts o;
  o.token = in.token;
  // The marketplace has no per-page identity (requests are synthetic), so the
  // compressibility class is keyed on the request token: deterministic, and
  // spread across the four classes like real pages would be.
  const uint64_t bytes =
      opts_.compress
          ? kReqBytes + CompressedPayloadBytes(opts_.compress_seed, in.token, kPageBytes - kReqBytes)
          : kPageBytes;
  rpc_->Notify(in.dst, in.src, MsgKind::kDsmPageData, bytes, std::move(o));
}

void Marketplace::OnPageReply(const RpcLayer::Inbound& in) {
  Complete(CtlVm(in.token), static_cast<int>(CtlArg(in.token)));
}

void Marketplace::Complete(uint64_t vm, int stream) {
  VmRun& run = vms_[vm - 1];
  const NodeId home = run.home;
  if (faulty_ && !StreamLive(run, NodeLoop(home)->now())) return;
  StreamRt& st = run.rt[static_cast<size_t>(stream)];
  // Under ack loss a request can both deliver (the reply arrives) and fail
  // (every ack dropped, the sender gives up): exactly one completion counts.
  if (!st.awaiting) return;
  st.awaiting = false;
  nodes_[static_cast<size_t>(home)].latency.Record(
      static_cast<double>(NodeLoop(home)->now() - st.issue));
  if (--st.remaining > 0) {
    NodeLoop(home)->ScheduleAfter(opts_.think_ns, [this, vm, stream] { DoRequest(vm, stream); });
    return;
  }
  if (--run.live_streams == 0) {
    run.home_done = true;
    run.home_finished = NodeLoop(home)->now();
    SendVmDone(vm);
  }
}

void Marketplace::SendVmDone(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  const NodeId home = run.home;
  RpcLayer::CallOpts o;
  o.token = PackCtl(kOpVmDone, vm, 0);
  if (faulty_) {
    o.on_fail = [this, vm] { RetryVmDone(vm); };
  }
  rpc_->Notify(home, nodes_[static_cast<size_t>(home)].orch_view, MsgKind::kControl, kCtrlBytes,
               std::move(o));
}

// The orchestrator (or its address) may be dead; keep redirecting the done
// notice at whatever orch_view currently says until it lands or the budget
// runs out. A takeover's kOpNewOrch updates orch_view between attempts.
void Marketplace::RetryVmDone(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  const NodeId home = run.home;
  if (!StreamLive(run, NodeLoop(home)->now())) return;
  if (++run.done_attempts > opts_.failover.done_retry_limit) return;
  NodeLoop(home)->ScheduleAfter(opts_.failover.done_retry_ns, [this, vm] {
    VmRun& r2 = vms_[vm - 1];
    if (!StreamLive(r2, NodeLoop(r2.home)->now())) return;
    SendVmDone(vm);
  });
}

// --- Snapshot (quiesce points only: a fully drained admission wave) ---

uint64_t Marketplace::ConfigFingerprint() const {
  std::string s = "marketplace-v1";
  const auto add = [&s](const std::string& v) {
    s += '|';
    s += v;
  };
  add(std::to_string(opts_.num_nodes));
  add(std::to_string(opts_.vcpus_per_node));
  add(std::to_string(opts_.mem_per_node));
  add(ArrivalKindName(opts_.trace.kind));
  add(std::to_string(opts_.trace.vms));
  add(std::to_string(opts_.trace.span));
  add(std::to_string(opts_.trace.seed));
  add(std::to_string(opts_.trace.max_vcpus));
  add(std::to_string(opts_.trace.mem_per_vcpu));
  add(std::to_string(opts_.trace.requests_per_vcpu));
  add(std::to_string(opts_.trace.remote_frac));
  add(opts_.policy);
  add(std::to_string(opts_.epochs));
  add(std::to_string(opts_.reclamation ? 1 : 0));
  add(std::to_string(opts_.think_ns));
  add(std::to_string(opts_.service_ns));
  add(std::to_string(opts_.page_service_ns));
  add(std::to_string(opts_.qos ? 1 : 0));
  add(std::to_string(opts_.coalesced_acks ? 1 : 0));
  add(std::to_string(opts_.link.latency));
  add(std::to_string(opts_.link.bytes_per_second));
  add(std::to_string(opts_.latency_jitter_ns));
  add(std::to_string(opts_.faults.seed));
  add(std::to_string(opts_.faults.drop_prob));
  add(std::to_string(opts_.faults.dup_prob));
  add(std::to_string(opts_.faults.extra_delay_max));
  for (const MarketplaceFaultOptions::Crash& c : opts_.faults.crashes) {
    add(std::to_string(c.node) + "@" + std::to_string(c.at));
  }
  for (const MarketplaceFaultOptions::Restart& c : opts_.faults.restarts) {
    add(std::to_string(c.node) + "@" + std::to_string(c.at));
  }
  for (const MarketplaceFaultOptions::Partition& p : opts_.faults.partitions) {
    add(std::to_string(p.a) + "-" + std::to_string(p.b) + "@" + std::to_string(p.from) + "-" +
        std::to_string(p.until));
  }
  add(std::to_string(opts_.failover.heartbeat_ns));
  add(std::to_string(opts_.failover.fail_phi));
  add(std::to_string(opts_.failover.phi_window));
  add(std::to_string(opts_.failover.probe_interval_ns));
  add(std::to_string(opts_.failover.done_retry_ns));
  add(std::to_string(opts_.failover.done_retry_limit));
  add(std::to_string(static_cast<int>(opts_.topology.kind)));
  add(std::to_string(opts_.topology.pod_size));
  add(std::to_string(opts_.topology.oversub));
  add(std::to_string(opts_.topology.core_planes));
  add(std::to_string(opts_.rdma_read ? 1 : 0));
  add(std::to_string(opts_.compress ? 1 : 0));
  add(std::to_string(opts_.compress_seed));
  return SnapshotHashString(s);
}

std::string Marketplace::Save() {
  // The drained boundary leaves no live tenants, leases, or queued VMs —
  // only outcomes, counters, clocks, and the lease book's id/counter state
  // go on the wire.
  FV_CHECK(waiting_.empty());
  FV_CHECK(!reclaim_in_flight_);
  FV_CHECK(!takeover_active_);
  FV_CHECK_EQ(leases_->ActiveLeases(), 0);

  SnapshotWriter w;
  w.BeginSection("mkt.run");
  w.U64(ConfigFingerprint());
  w.U32(static_cast<uint32_t>(completed_waves_));
  w.U64(events_);

  w.BeginSection("mkt.clocks");
  for (int p = 0; p < opts_.num_nodes; ++p) {
    w.I64(ploop_->partition(p)->now());
    w.U32(ploop_->next_cancellable_token(p));
  }

  w.BeginSection("mkt.orch");
  w.U64(placed_single_);
  w.U64(placed_aggregate_);
  w.U64(delayed_);
  w.U64(reclaims_);
  w.U64(vms_completed_);
  w.U64(leases_->next_id());
  const LeaseStats& ls = leases_->stats();
  SaveCounter(&w, ls.granted);
  SaveCounter(&w, ls.renewed);
  SaveCounter(&w, ls.expired);
  SaveCounter(&w, ls.revoked);
  SaveCounter(&w, ls.released);
  SaveCounter(&w, ls.renew_failures);
  SaveCounter(&w, ls.handbacks);
  SaveCounter(&w, ls.requested);
  SaveCounter(&w, ls.lost);
  SaveCounter(&w, ls.dropped);
  SaveCounter(&w, ls.orphaned);
  SaveCounter(&w, ls.restored);
  SaveCounter(&w, ls.failover_cleared);

  w.BeginSection("mkt.vms");
  for (const VmRun& run : vms_) {
    w.U8(static_cast<uint8_t>(run.status));
    w.U8(run.was_delayed ? 1 : 0);
    w.I64(run.submitted);
    w.I64(run.started);
    w.I64(run.finished);
    w.I64(run.home);
    w.U32(static_cast<uint32_t>(run.span));
    w.U8(run.fail_reason);
  }

  w.BeginSection("mkt.nodes");
  for (const NodeRt& nr : nodes_) {
    w.U64(nr.c.local_requests);
    w.U64(nr.c.remote_requests);
    w.U64(nr.c.served_pages);
    w.U64(nr.c.reclaim_moves);
    w.U64(nr.c.request_failures);
    SaveHistogram(&w, nr.latency);
  }

  w.BeginSection("mkt.series");
  for (const TimeSeries* ts : {&consolidation_, &stranded_}) {
    w.U32(static_cast<uint32_t>(ts->points().size()));
    for (const auto& [t, v] : ts->points()) {
      w.I64(t);
      w.F64(v);
    }
  }

  if (faulty_) {
    w.BeginSection("mkt.fault");
    w.U64(failovers_);
    w.U64(vms_failed_);
    w.U64(nodes_died_);
    w.U64(lender_replacements_);
    w.U64(lender_degradations_);
    w.U64(journal_records_);
    w.U64(late_dones_);
    w.U64(shadow_divergence_);
    w.I64(orch_node_);
    for (int n = 0; n < opts_.num_nodes; ++n) {
      w.U8(believed_up_[static_cast<size_t>(n)]);
      w.I64(nodes_[static_cast<size_t>(n)].orch_since);
    }
    SaveHistogram(&w, detection_ns_);
    SaveHistogram(&w, recovery_ns_);
    w.U32(static_cast<uint32_t>(wave_finish_.size()));
    for (const TimeNs t : wave_finish_) w.I64(t);
    SaveFaultPlanState(&w, plan_.get());
  }

  w.BeginSection("mkt.transport");
  SaveTransportShards(&w, fabric_.get(), rpc_.get());
  return w.Finish();
}

bool Marketplace::Load(const std::string& data, std::string* error) {
  SnapshotReader r(data);
  const auto fail = [&r, error]() {
    if (error != nullptr) *error = r.error();
    return false;
  };
  if (!r.Section("mkt.run")) return fail();
  const uint64_t fingerprint = r.U64();
  const uint32_t waves_done = r.U32();
  const uint64_t events = r.U64();
  if (!r.ok()) return fail();
  if (fingerprint != ConfigFingerprint()) {
    r.FailExternal("marketplace: snapshot was taken under different MarketplaceOptions");
    return fail();
  }
  if (waves_done > static_cast<uint32_t>(opts_.epochs)) {
    r.FailExternal("marketplace: snapshot claims more completed waves than the run has");
    return fail();
  }

  if (!r.Section("mkt.clocks")) return fail();
  std::vector<TimeNs> nows;
  std::vector<uint32_t> tokens;
  nows.reserve(static_cast<size_t>(opts_.num_nodes));
  tokens.reserve(static_cast<size_t>(opts_.num_nodes));
  for (int p = 0; p < opts_.num_nodes; ++p) {
    nows.push_back(r.I64());
    tokens.push_back(r.U32());
  }
  if (!r.ok()) return fail();
  for (const TimeNs t : nows) {
    if (t < 0) {
      r.FailExternal("marketplace: negative virtual clock");
      return fail();
    }
  }

  if (!r.Section("mkt.orch")) return fail();
  const uint64_t placed_single = r.U64();
  const uint64_t placed_aggregate = r.U64();
  const uint64_t delayed = r.U64();
  const uint64_t reclaims = r.U64();
  const uint64_t completed = r.U64();
  const uint64_t lease_next = r.U64();
  LeaseStats staged_lease;
  LoadCounter(&r, &staged_lease.granted);
  LoadCounter(&r, &staged_lease.renewed);
  LoadCounter(&r, &staged_lease.expired);
  LoadCounter(&r, &staged_lease.revoked);
  LoadCounter(&r, &staged_lease.released);
  LoadCounter(&r, &staged_lease.renew_failures);
  LoadCounter(&r, &staged_lease.handbacks);
  LoadCounter(&r, &staged_lease.requested);
  LoadCounter(&r, &staged_lease.lost);
  LoadCounter(&r, &staged_lease.dropped);
  LoadCounter(&r, &staged_lease.orphaned);
  LoadCounter(&r, &staged_lease.restored);
  LoadCounter(&r, &staged_lease.failover_cleared);
  if (!r.ok()) return fail();
  if (lease_next == kInvalidLease) {
    r.FailExternal("marketplace: invalid lease id counter");
    return fail();
  }

  if (!r.Section("mkt.vms")) return fail();
  std::vector<VmRun> staged_vms = vms_;  // keep the trace-derived shape
  for (VmRun& run : staged_vms) {
    const uint8_t status = r.U8();
    run.was_delayed = r.U8() != 0;
    run.submitted = r.I64();
    run.started = r.I64();
    run.finished = r.I64();
    run.home = static_cast<NodeId>(r.I64());
    run.span = static_cast<int>(r.U32());
    run.fail_reason = r.U8();
    if (!r.ok()) return fail();
    const bool terminal_ok =
        status == static_cast<uint8_t>(VmStatus::kPending) ||
        status == static_cast<uint8_t>(VmStatus::kDone) ||
        (faulty_ && status == static_cast<uint8_t>(VmStatus::kFailed));
    if (!terminal_ok) {
      r.FailExternal("marketplace: snapshot holds a live VM (not a wave boundary)");
      return fail();
    }
    run.status = static_cast<VmStatus>(status);
    if (run.status == VmStatus::kDone &&
        (run.home < 0 || run.home >= opts_.num_nodes || run.span < 1 ||
         run.span > opts_.num_nodes)) {
      r.FailExternal("marketplace: VM outcome out of range");
      return fail();
    }
    if (run.fail_reason > static_cast<uint8_t>(VmFailReason::kCapacity)) {
      r.FailExternal("marketplace: VM fail reason out of range");
      return fail();
    }
  }

  if (!r.Section("mkt.nodes")) return fail();
  std::vector<NodeRt> staged_nodes(nodes_.size());
  for (NodeRt& nr : staged_nodes) {
    nr.c.local_requests = r.U64();
    nr.c.remote_requests = r.U64();
    nr.c.served_pages = r.U64();
    nr.c.reclaim_moves = r.U64();
    nr.c.request_failures = r.U64();
    LoadHistogram(&r, &nr.latency);
  }
  if (!r.ok()) return fail();

  if (!r.Section("mkt.series")) return fail();
  TimeSeries staged_consol;
  TimeSeries staged_stranded;
  for (TimeSeries* ts : {&staged_consol, &staged_stranded}) {
    const uint32_t count = r.U32();
    if (!r.ok()) return fail();
    for (uint32_t i = 0; i < count; ++i) {
      const TimeNs t = r.I64();
      const double v = r.F64();
      if (!r.ok()) return fail();
      ts->Append(t, v);
    }
  }

  uint64_t staged_fault[8] = {0};
  int64_t staged_orch = 0;
  std::vector<uint8_t> staged_believed;
  std::vector<TimeNs> staged_since;
  Histogram staged_detect;
  Histogram staged_recover;
  std::vector<TimeNs> staged_wf;
  if (faulty_) {
    if (!r.Section("mkt.fault")) return fail();
    for (uint64_t& v : staged_fault) v = r.U64();
    staged_orch = r.I64();
    for (int n = 0; n < opts_.num_nodes; ++n) {
      staged_believed.push_back(r.U8());
      staged_since.push_back(r.I64());
    }
    LoadHistogram(&r, &staged_detect);
    LoadHistogram(&r, &staged_recover);
    const uint32_t wf = r.U32();
    if (!r.ok()) return fail();
    if (wf > waves_done) {
      r.FailExternal("marketplace: more wave-finish stamps than completed waves");
      return fail();
    }
    for (uint32_t i = 0; i < wf; ++i) staged_wf.push_back(r.I64());
    LoadFaultPlanState(&r, plan_.get());
    if (!r.ok()) return fail();
    if (staged_orch < 0 || staged_orch >= opts_.num_nodes ||
        staged_believed[static_cast<size_t>(staged_orch)] == 0) {
      r.FailExternal("marketplace: snapshot orchestrator is not a believed-up node");
      return fail();
    }
  }

  if (!r.Section("mkt.transport")) return fail();
  TransportShards staged_transport;
  LoadTransportShards(&r, fabric_.get(), &staged_transport);
  if (!r.AtEnd()) return fail();

  // Commit.
  for (int p = 0; p < opts_.num_nodes; ++p) {
    ploop_->partition(p)->AdvanceTo(nows[static_cast<size_t>(p)]);
    ploop_->RestoreCancellableToken(p, tokens[static_cast<size_t>(p)]);
  }
  vms_ = std::move(staged_vms);
  nodes_ = std::move(staged_nodes);
  consolidation_ = std::move(staged_consol);
  stranded_ = std::move(staged_stranded);
  placed_single_ = placed_single;
  placed_aggregate_ = placed_aggregate;
  delayed_ = delayed;
  reclaims_ = reclaims;
  vms_completed_ = completed;
  leases_->RestoreNextId(lease_next);
  *leases_->mutable_stats() = staged_lease;
  CommitTransportShards(staged_transport, fabric_.get(), rpc_.get());
  completed_waves_ = static_cast<int>(waves_done);
  events_ = events;

  if (faulty_) {
    failovers_ = staged_fault[0];
    vms_failed_ = staged_fault[1];
    nodes_died_ = staged_fault[2];
    lender_replacements_ = staged_fault[3];
    lender_degradations_ = staged_fault[4];
    journal_records_ = staged_fault[5];
    late_dones_ = staged_fault[6];
    shadow_divergence_ = staged_fault[7];
    orch_node_ = static_cast<NodeId>(staged_orch);
    leases_->FailoverReset(orch_node_);
    *leases_->mutable_stats() = staged_lease;  // the reset bumped failover_cleared
    for (int n = 0; n < opts_.num_nodes; ++n) {
      believed_up_[static_cast<size_t>(n)] = staged_believed[static_cast<size_t>(n)];
      nodes_[static_cast<size_t>(n)].orch_since = staged_since[static_cast<size_t>(n)];
    }
    detection_ns_ = staged_detect;
    recovery_ns_ = staged_recover;
    wave_finish_ = std::move(staged_wf);
  }

  // Rebuild the home-side routing/runtime state the sections don't carry
  // (fresh staged_nodes have empty homed_vms and default orch_view).
  for (NodeRt& nr : nodes_) nr.orch_view = orch_node_;
  for (size_t i = 0; i < vms_.size(); ++i) {
    VmRun& run = vms_[i];
    if (run.status != VmStatus::kDone) continue;
    run.home_done = true;
    run.home_finished = run.finished;
    run.home_epoch = run.started;
    nodes_[static_cast<size_t>(run.home)].homed_vms.push_back(i + 1);  // ascending by construction
  }
  successor_ = kInvalidNode;
  beats_active_ = probes_active_ = false;
  takeover_active_ = false;
  takeover_crash_t_ = -1;
  takeover_reports_.clear();
  deferred_dones_.clear();
  return true;
}

uint64_t Marketplace::Digest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis, folded per word
  const auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (const NodeRt& nr : nodes_) {
    mix(nr.c.local_requests);
    mix(nr.c.remote_requests);
    mix(nr.c.served_pages);
    mix(nr.c.reclaim_moves);
    mix(nr.c.request_failures);
    mix(nr.latency.count());
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      mix(nr.latency.bucket(i));
    }
  }
  for (const VmRun& run : vms_) {
    mix(static_cast<uint64_t>(run.status));
    mix(static_cast<uint64_t>(run.submitted));
    mix(static_cast<uint64_t>(run.started));
    mix(static_cast<uint64_t>(run.finished));
    mix(static_cast<uint64_t>(static_cast<int64_t>(run.home)));
    mix(static_cast<uint64_t>(run.span));
  }
  mix(placed_single_);
  mix(placed_aggregate_);
  mix(delayed_);
  mix(reclaims_);
  mix(vms_completed_);
  if (faulty_) {
    mix(failovers_);
    mix(vms_failed_);
    mix(nodes_died_);
    mix(lender_replacements_);
    mix(lender_degradations_);
    mix(late_dones_);
    mix(journal_records_);
    for (const VmRun& run : vms_) mix(run.fail_reason);
    for (const uint8_t b : believed_up_) mix(b);
  }
  return h;
}

MarketplaceResult Marketplace::Run(const MarketplaceRunConfig& cfg) {
  for (int wave = completed_waves_; wave < opts_.epochs; ++wave) {
    BuildWaveSchedule(wave);
    if (faulty_ && !wave_sched_.empty()) {
      WavePrep();
      ScheduleKickoff();
    }
    ScheduleWave();
    RunEngine();
    if (faulty_) {
      // The engine drained but a crash may have left non-terminal VMs (no
      // armed successor, gated arrivals, lost done notices, or tenants the
      // survivors can never fit). Each backstop round strictly reduces the
      // non-terminal set or fails the remainder; the guard is generous.
      int guard = 0;
      while (!WaveTerminal(wave)) {
        FV_CHECK_LT(guard++, 4 * (opts_.num_nodes + 4));
        DriverRecover(wave);
        RunEngine();
      }
    }
    CheckWaveDrained(wave);
    wave_finish_.push_back(ploop_->now_max());
    completed_waves_ = wave + 1;
    if (cfg.snapshot_out != nullptr && completed_waves_ == cfg.snapshot_epoch) {
      *cfg.snapshot_out = Save();
    }
  }

  MarketplaceResult r;
  r.per_node.reserve(nodes_.size());
  for (const NodeRt& nr : nodes_) {
    r.per_node.push_back(nr.c);
    r.totals.Accumulate(nr.c);
    r.latency.Accumulate(nr.latency);
  }
  r.placed_single = placed_single_;
  r.placed_aggregate = placed_aggregate_;
  r.delayed = delayed_;
  r.reclaims = reclaims_;
  r.vms_completed = vms_completed_;
  r.lease = leases_->stats();
  r.vms.reserve(vms_.size());
  for (size_t i = 0; i < vms_.size(); ++i) {
    const VmRun& run = vms_[i];
    VmOutcome o;
    o.vm = i + 1;
    o.vcpus = run.vcpus;
    o.submitted = run.submitted;
    o.started = run.started;
    o.finished = run.finished;
    o.home = run.home;
    o.span_nodes = run.span;
    o.completed = run.status == VmStatus::kDone;
    o.failed = run.status == VmStatus::kFailed;
    o.fail_reason = static_cast<VmFailReason>(run.fail_reason);
    r.vms.push_back(o);
  }
  r.consolidation = consolidation_;
  r.stranded = stranded_;
  r.finish_time = ploop_->now_max();
  r.events_dispatched = events_;
  r.state_digest = Digest();
  r.fabric = fabric_->MergedStats();
  r.rpc = rpc_->MergedStats();
  r.used_fault_plan = faulty_;
  r.vms_failed = vms_failed_;
  r.failovers = failovers_;
  r.nodes_died = nodes_died_;
  r.lender_replacements = lender_replacements_;
  r.lender_degradations = lender_degradations_;
  r.journal_records = journal_records_;
  r.late_dones = late_dones_;
  r.detection_ns = detection_ns_;
  r.recovery_ns = recovery_ns_;
  r.wave_finish_ns = wave_finish_;
  uint64_t residue = 0;
  for (const TenantLedger& l : ledgers_) {
    residue += static_cast<uint64_t>(l.committed_vcpus());
  }
  r.ledger_residue_slots = residue;
  if (faulty_) {
    r.faults = plan_->MergedStats();
    r.retry = fabric_->MergedRetryStats();
  }
  r.threads = threads_;
  r.core = ploop_->stats();
  return r;
}

}  // namespace

void MarketplaceNodeCounters::Accumulate(const MarketplaceNodeCounters& o) {
  local_requests += o.local_requests;
  remote_requests += o.remote_requests;
  served_pages += o.served_pages;
  reclaim_moves += o.reclaim_moves;
  request_failures += o.request_failures;
}

const char* VmFailReasonName(VmFailReason reason) {
  switch (reason) {
    case VmFailReason::kNone: return "none";
    case VmFailReason::kHomeCrash: return "home_crash";
    case VmFailReason::kOrchLost: return "orch_lost";
    case VmFailReason::kCapacity: return "capacity";
  }
  return "?";
}

MarketplaceResult RunMarketplace(const MarketplaceOptions& opts, int threads) {
  return RunMarketplaceEx(opts, threads, MarketplaceRunConfig{});
}

MarketplaceResult RunMarketplaceEx(const MarketplaceOptions& opts, int threads,
                                   const MarketplaceRunConfig& cfg) {
  if (cfg.snapshot_out != nullptr) {
    FV_CHECK_GE(cfg.snapshot_epoch, 1);
    FV_CHECK_LE(cfg.snapshot_epoch, opts.epochs);
  }
  // On resume the plan attaches unarmed: every transition marker fired
  // during the first run's engine passes, and the wave boundary is past all
  // of them (dsmstorm's resume follows the same rule).
  Marketplace mkt(opts, threads, /*arm_plan=*/cfg.snapshot_in == nullptr);
  if (cfg.snapshot_in != nullptr) {
    std::string err;
    if (!mkt.Load(*cfg.snapshot_in, &err)) {
      if (cfg.error == nullptr) {
        std::fprintf(stderr, "marketplace snapshot load failed: %s\n", err.c_str());
        std::abort();
      }
      *cfg.error = err;
      return MarketplaceResult{};
    }
  }
  return mkt.Run(cfg);
}

std::string MarketplaceReport(const MarketplaceResult& r) {
  // Deliberately engine-bookkeeping-free: no thread count, no parallel-core
  // stats. Two runs satisfy the determinism contract iff these bytes match.
  std::string out;
  out.reserve(4096 + r.per_node.size() * 96 + r.vms.size() * 96);
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  const auto u = [](uint64_t v) { return std::to_string(v); };
  // Doubles go through a fixed format so the bytes are a pure function of
  // the (deterministic) value.
  const auto f = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string(buf);
  };
  line("finish_ns=" + std::to_string(r.finish_time));
  line("digest=" + u(r.state_digest));
  line("totals local=" + u(r.totals.local_requests) + " remote=" + u(r.totals.remote_requests) +
       " served_pages=" + u(r.totals.served_pages) + " reclaim_moves=" +
       u(r.totals.reclaim_moves) + " failures=" + u(r.totals.request_failures));
  line("latency count=" + u(r.latency.count()) + " p50_ns=" +
       u(static_cast<uint64_t>(r.latency.Percentile(50))) + " p99_ns=" +
       u(static_cast<uint64_t>(r.latency.Percentile(99))) + " max_ns=" +
       u(static_cast<uint64_t>(r.latency.max())));
  line("placement single=" + u(r.placed_single) + " aggregate=" + u(r.placed_aggregate) +
       " delayed=" + u(r.delayed) + " reclaims=" + u(r.reclaims) + " completed=" +
       u(r.vms_completed));
  line("lease granted=" + u(r.lease.granted.value()) + " revoked=" + u(r.lease.revoked.value()) +
       " released=" + u(r.lease.released.value()) + " handbacks=" + u(r.lease.handbacks.value()));
  line("consolidation mean=" + f(r.consolidation.MeanValue()) + " final=" +
       f(r.consolidation.empty() ? 0.0 : r.consolidation.points().back().second));
  line("stranded mean=" + f(r.stranded.MeanValue()) + " final=" +
       f(r.stranded.empty() ? 0.0 : r.stranded.points().back().second));
  line("fabric messages=" + u(r.fabric.total_messages.value()) + " bytes=" +
       u(r.fabric.total_bytes.value()));
  line("rpc calls=" + u(r.rpc.calls.value()) + " notifies=" + u(r.rpc.notifies.value()) +
       " failures=" + u(r.rpc.call_failures.value()));
  if (r.used_fault_plan) {
    line("faults dropped=" + u(r.faults.messages_dropped.value()) + " duplicated=" +
         u(r.faults.messages_duplicated.value()) + " delayed=" +
         u(r.faults.messages_delayed.value()) + " crashes=" + u(r.faults.node_crashes.value()) +
         " restarts=" + u(r.faults.node_restarts.value()) + " cuts=" +
         u(r.faults.partitions_cut.value()) + " heals=" + u(r.faults.partitions_healed.value()));
    line("retry retransmits=" + u(r.retry.retransmits.total()) + " timeouts=" +
         u(r.retry.timeouts.total()) + " send_failures=" + u(r.retry.send_failures.total()) +
         " dups_suppressed=" + u(r.retry.dups_suppressed.total()));
    line("chaos failovers=" + u(r.failovers) + " nodes_died=" + u(r.nodes_died) +
         " vms_failed=" + u(r.vms_failed) + " replacements=" + u(r.lender_replacements) +
         " degradations=" + u(r.lender_degradations) + " journal=" + u(r.journal_records) +
         " late_dones=" + u(r.late_dones) + " residue=" + u(r.ledger_residue_slots));
    line("failover detect_count=" + u(r.detection_ns.count()) + " detect_p50_ns=" +
         u(static_cast<uint64_t>(r.detection_ns.Percentile(50))) + " detect_p99_ns=" +
         u(static_cast<uint64_t>(r.detection_ns.Percentile(99))) + " recover_count=" +
         u(r.recovery_ns.count()) + " recover_p50_ns=" +
         u(static_cast<uint64_t>(r.recovery_ns.Percentile(50))) + " recover_p99_ns=" +
         u(static_cast<uint64_t>(r.recovery_ns.Percentile(99))));
  }
  for (size_t n = 0; n < r.per_node.size(); ++n) {
    const MarketplaceNodeCounters& c = r.per_node[n];
    line("node " + std::to_string(n) + " local=" + u(c.local_requests) + " remote=" +
         u(c.remote_requests) + " served=" + u(c.served_pages) + " moves=" +
         u(c.reclaim_moves) + " failures=" + u(c.request_failures));
  }
  for (const VmOutcome& o : r.vms) {
    std::string v = "vm " + u(o.vm) + " vcpus=" + std::to_string(o.vcpus) + " submit_ns=" +
                    std::to_string(o.submitted) + " start_ns=" + std::to_string(o.started) +
                    " finish_ns=" + std::to_string(o.finished) + " home=" +
                    std::to_string(o.home) + " span=" + std::to_string(o.span_nodes) +
                    " done=" + (o.completed ? "1" : "0");
    if (r.used_fault_plan) {
      v += " fail=" + std::to_string(static_cast<int>(o.fail_reason));
    }
    line(v);
  }
  return out;
}

}  // namespace fragvisor
