#include "src/cluster/marketplace.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ckpt/sim_snapshot.h"
#include "src/cluster/placement.h"
#include "src/host/node.h"
#include "src/sim/check.h"
#include "src/sim/rng.h"
#include "src/sim/snapshot.h"
#include "src/sim/state_io.h"

namespace fragvisor {
namespace {

constexpr uint64_t kCtrlBytes = 256;    // orchestrator control messages
constexpr uint64_t kReqBytes = 64;      // remote page request
constexpr uint64_t kPageBytes = 4096 + 64;

// Control-token ops, multiplexed over MsgKind::kVcpuMigration (orchestrator
// -> home) and MsgKind::kControl (home -> orchestrator).
constexpr uint64_t kOpStart = 0;     // begin the VM's request streams
constexpr uint64_t kOpCallHome = 1;  // a lender share was consolidated home
constexpr uint64_t kOpVmDone = 2;    // all streams drained

// splitmix64, as in workload/dsmstorm: spreads structured ids into
// independent-looking seeds and jitter values.
uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Token layout: [op : 8][vm : 40][arg : 16] — arg carries a stream index or
// a node id depending on the op.
uint64_t PackCtl(uint64_t op, uint64_t vm, uint64_t arg) {
  FV_DCHECK(op < (1ull << 8));
  FV_DCHECK(vm < (1ull << 40));
  FV_DCHECK(arg < (1ull << 16));
  return (op << 56) | (vm << 16) | arg;
}
uint64_t CtlOp(uint64_t token) { return token >> 56; }
uint64_t CtlVm(uint64_t token) { return (token >> 16) & ((1ull << 40) - 1); }
uint64_t CtlArg(uint64_t token) { return token & 0xffff; }

enum class VmStatus : uint8_t { kPending = 0, kWaiting = 1, kRunning = 2, kDone = 3 };

struct StreamRt {
  Rng rng{0};
  uint64_t remaining = 0;
  TimeNs issue = 0;  // issue instant of the in-flight request
};

// One VM's run state. Orchestrator fields only ever run on node 0's
// partition; home-runtime fields are written by the orchestrator strictly
// before the start notice and thereafter touched only by the home node's
// partition (the delivery gives the happens-before edge), so the whole
// struct is race-free without locking.
struct VmRun {
  // Static shape, fixed at construction from the arrival trace.
  int vcpus = 0;
  uint64_t mem_per_slot = 0;
  uint64_t requests_per_stream = 0;
  double remote_frac = 0.0;

  // Orchestrator-owned.
  VmStatus status = VmStatus::kPending;
  TimeNs submitted = 0;
  TimeNs started = 0;
  TimeNs finished = 0;
  std::vector<std::pair<NodeId, int>> alloc;  // (node, slots), home first
  std::vector<LeaseId> leases;                // one per non-home slice
  int span = 0;                               // |alloc| (post-consolidation)
  bool was_delayed = false;

  // Written by the orchestrator before the start notice, home-owned after.
  NodeId home = kInvalidNode;
  std::vector<NodeId> lenders;  // non-home slices; shrinks on consolidation
  std::vector<StreamRt> rt;
  int live_streams = 0;
};

// Per-node runtime owned by that node's partition.
struct NodeRt {
  MarketplaceNodeCounters c;
  Histogram latency;  // latency of requests homed on this node
};

class Marketplace {
 public:
  Marketplace(const MarketplaceOptions& opts, int threads);

  MarketplaceResult Run(const MarketplaceRunConfig& cfg);
  bool Load(const std::string& data, std::string* error);

 private:
  EventLoop* NodeLoop(NodeId node) { return ploop_->partition(node); }
  TimeNs OrchNow() { return NodeLoop(0)->now(); }

  void ScheduleWaveArrivals(int wave);
  void RunEngine();
  void CheckWaveDrained(int wave);
  std::string Save();
  uint64_t ConfigFingerprint() const;
  uint64_t Digest() const;

  // Orchestrator (partition 0).
  void OnArrival(uint64_t vm);
  void TryAdmitAll();
  bool TryAdmit(uint64_t vm);
  bool TryReclaim();
  void OnLeaseEvent(const Lease& lease, LeaseEvent event);
  void OnVmDone(uint64_t vm);
  void SampleSeries();

  // Home-partition request streams.
  void OnVmStart(uint64_t vm);
  void OnCallHome(uint64_t vm, NodeId lender);
  void DoRequest(uint64_t vm, int stream);
  void Complete(uint64_t vm, int stream);
  void OnPageRequest(const RpcLayer::Inbound& in);
  void OnPageReply(const RpcLayer::Inbound& in);

  const MarketplaceOptions opts_;
  const int threads_;
  std::unique_ptr<ParallelEventLoop> ploop_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<RpcLayer> rpc_;
  std::unique_ptr<LeaseManager> leases_;
  std::unique_ptr<PlacementPolicy> policy_;

  std::vector<VmArrival> arrivals_;  // sorted by (time, vm)
  std::vector<VmRun> vms_;           // indexed by vm - 1; never resized
  std::vector<NodeRt> nodes_;        // indexed by node; partition-owned

  // Orchestrator state (partition 0 only).
  std::vector<TenantLedger> ledgers_;
  std::deque<uint64_t> waiting_;  // FIFO of vm ids awaiting admission
  bool reclaim_in_flight_ = false;
  LeaseId pending_reclaim_lease_ = kInvalidLease;
  uint64_t placed_single_ = 0;
  uint64_t placed_aggregate_ = 0;
  uint64_t delayed_ = 0;
  uint64_t reclaims_ = 0;
  uint64_t vms_completed_ = 0;
  TimeSeries consolidation_;
  TimeSeries stranded_;

  uint64_t events_ = 0;
  int completed_waves_ = 0;
};

Marketplace::Marketplace(const MarketplaceOptions& opts, int threads)
    : opts_(opts), threads_(threads < 1 ? 1 : threads) {
  FV_CHECK_GT(opts.num_nodes, 0);
  FV_CHECK_GT(opts.vcpus_per_node, 0);
  FV_CHECK_GT(opts.mem_per_node, 0u);
  FV_CHECK_GE(opts.epochs, 1);
  FV_CHECK_GT(opts.trace.vms, 0);
  FV_CHECK_GT(opts.trace.requests_per_vcpu, 0u);
  // The largest VM must fit the cluster's aggregate at all.
  FV_CHECK_LE(opts.trace.max_vcpus,
              static_cast<uint64_t>(opts.num_nodes) * static_cast<uint64_t>(opts.vcpus_per_node));

  policy_ = MakePlacementPolicy(opts.policy);
  FV_CHECK(policy_ != nullptr);

  ParallelEventLoop::Options po;
  po.num_partitions = opts.num_nodes;
  po.num_threads = threads_;
  // The base latency is the cluster-wide minimum: jitter only ever adds.
  po.lookahead = opts.link.latency;
  ploop_ = std::make_unique<ParallelEventLoop>(po);
  fabric_ = std::make_unique<Fabric>(ploop_.get(), opts.num_nodes, opts.link);

  if (opts.latency_jitter_ns > 0 && opts.num_nodes > 1) {
    for (NodeId s = 0; s < opts.num_nodes; ++s) {
      for (NodeId d = 0; d < opts.num_nodes; ++d) {
        if (s == d) continue;
        LinkParams lp = opts.link;
        const uint64_t key = SplitMix(opts.trace.seed ^
                                      (static_cast<uint64_t>(s) << 32 | static_cast<uint32_t>(d)));
        lp.latency += static_cast<TimeNs>(key % static_cast<uint64_t>(opts.latency_jitter_ns + 1));
        fabric_->SetLinkParams(s, d, lp);
      }
    }
  }

  RpcConfig rc;
  rc.coalesced_acks = opts.coalesced_acks;
  rc.qos.enabled = opts.qos;
  rpc_ = std::make_unique<RpcLayer>(nullptr, fabric_.get(), rc);

  LeaseManagerConfig lc;
  lc.manual_clock = true;
  leases_ = std::make_unique<LeaseManager>(rpc_.get(), /*home=*/0, lc);

  ledgers_.resize(static_cast<size_t>(opts.num_nodes));
  for (TenantLedger& l : ledgers_) {
    l.Init(opts.mem_per_node, opts.vcpus_per_node);
  }

  arrivals_ = GenerateArrivalTrace(opts.trace);
  vms_.resize(arrivals_.size());
  for (const VmArrival& a : arrivals_) {
    VmRun& run = vms_[a.vm - 1];
    run.vcpus = a.vcpus;
    run.mem_per_slot = a.mem_bytes / static_cast<uint64_t>(a.vcpus);
    run.requests_per_stream = a.requests / static_cast<uint64_t>(a.vcpus);
    run.remote_frac = a.remote_frac;
    FV_CHECK_LE(run.mem_per_slot, opts.mem_per_node);
    FV_CHECK_GT(run.requests_per_stream, 0u);
  }

  nodes_.resize(static_cast<size_t>(opts.num_nodes));
  rpc_->Bind(0, MsgKind::kControl, [this](const RpcLayer::Inbound& in) {
    FV_CHECK_EQ(CtlOp(in.token), kOpVmDone);
    OnVmDone(CtlVm(in.token));
  });
  for (NodeId n = 0; n < opts.num_nodes; ++n) {
    rpc_->Bind(n, MsgKind::kVcpuMigration, [this](const RpcLayer::Inbound& in) {
      if (CtlOp(in.token) == kOpStart) {
        OnVmStart(CtlVm(in.token));
      } else {
        FV_CHECK_EQ(CtlOp(in.token), kOpCallHome);
        OnCallHome(CtlVm(in.token), static_cast<NodeId>(CtlArg(in.token)));
      }
    });
    rpc_->Bind(n, MsgKind::kDsmReadReq,
               [this](const RpcLayer::Inbound& in) { OnPageRequest(in); });
    rpc_->Bind(n, MsgKind::kDsmPageData,
               [this](const RpcLayer::Inbound& in) { OnPageReply(in); });
  }
}

// Schedules one admission wave's arrivals on the orchestrator's partition.
// Wave 0 of a fresh run uses the trace's absolute timestamps; every later
// wave — and every wave of a restored run — keeps the trace's inter-arrival
// gaps but starts one full link latency past the drained queue's end, which
// keeps every resulting send legal against the parallel core's horizon.
void Marketplace::ScheduleWaveArrivals(int wave) {
  const size_t n = arrivals_.size();
  const size_t per = (n + static_cast<size_t>(opts_.epochs) - 1) / static_cast<size_t>(opts_.epochs);
  const size_t begin = static_cast<size_t>(wave) * per;
  const size_t end = std::min(n, begin + per);
  if (begin >= end) return;
  const TimeNs now = ploop_->now_max();
  const TimeNs base = now == 0 ? 0 : now + opts_.link.latency + 1;
  const TimeNs first = arrivals_[begin].time;
  for (size_t i = begin; i < end; ++i) {
    const VmArrival& a = arrivals_[i];
    const TimeNs at = now == 0 ? a.time : base + (a.time - first);
    const uint64_t vm = a.vm;
    NodeLoop(0)->ScheduleAt(at, [this, vm] { OnArrival(vm); });
  }
}

void Marketplace::RunEngine() { events_ += ploop_->Run(); }

void Marketplace::CheckWaveDrained(int wave) {
  FV_CHECK(waiting_.empty());
  FV_CHECK(!reclaim_in_flight_);
  FV_CHECK_EQ(leases_->ActiveLeases(), 0);
  for (const TenantLedger& l : ledgers_) {
    FV_CHECK_EQ(l.num_tenants(), 0);
  }
  const size_t n = arrivals_.size();
  const size_t per = (n + static_cast<size_t>(opts_.epochs) - 1) / static_cast<size_t>(opts_.epochs);
  const size_t end = std::min(n, (static_cast<size_t>(wave) + 1) * per);
  for (size_t i = 0; i < end; ++i) {
    FV_CHECK(vms_[arrivals_[i].vm - 1].status == VmStatus::kDone);
  }
}

// --- Orchestrator (everything below until the stream section runs on node
// 0's partition exclusively) ---

void Marketplace::OnArrival(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  FV_CHECK(run.status == VmStatus::kPending);
  run.status = VmStatus::kWaiting;
  run.submitted = OrchNow();
  waiting_.push_back(vm);
  TryAdmitAll();
}

void Marketplace::TryAdmitAll() {
  // Admission pauses while a reclamation round trip is in flight: its ledger
  // move is already decided and must not race a fresh admission for the same
  // capacity.
  if (reclaim_in_flight_) return;
  while (!waiting_.empty()) {
    const uint64_t vm = waiting_.front();
    if (TryAdmit(vm)) {
      waiting_.pop_front();
      continue;
    }
    VmRun& run = vms_[vm - 1];
    if (!run.was_delayed) {
      run.was_delayed = true;
      ++delayed_;
    }
    if (opts_.reclamation && TryReclaim()) return;  // resume on the handback
    return;  // head-of-line waits; completions re-trigger admission
  }
}

bool Marketplace::TryAdmit(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  std::vector<NodeCapacityView> views;
  views.reserve(ledgers_.size());
  for (NodeId n = 0; n < opts_.num_nodes; ++n) {
    const TenantLedger& l = ledgers_[static_cast<size_t>(n)];
    views.push_back(NodeCapacityView{n, l.free_vcpus(), l.free_mem(), l.vcpu_capacity(),
                                     l.mem_capacity(), l.num_tenants()});
  }
  const std::map<NodeId, int> alloc = policy_->Place(views, run.vcpus, run.mem_per_slot);
  if (alloc.empty()) return false;

  // Home = the largest slice (ties to the lowest node id).
  NodeId home = kInvalidNode;
  int home_slots = 0;
  for (const auto& [node, slots] : alloc) {
    if (slots > home_slots) {
      home = node;
      home_slots = slots;
    }
  }
  FV_CHECK_NE(home, kInvalidNode);

  // Reserve every slice against its ledger; the policy placed against the
  // same live view, so the checked path must succeed.
  run.alloc.clear();
  run.alloc.emplace_back(home, alloc.at(home));
  run.lenders.clear();
  for (const auto& [node, slots] : alloc) {
    const bool ok = ledgers_[static_cast<size_t>(node)].Reserve(
        vm, static_cast<uint64_t>(slots) * run.mem_per_slot, slots);
    FV_CHECK(ok);
    if (node != home) {
      run.alloc.emplace_back(node, slots);
      run.lenders.push_back(node);
    }
  }
  run.span = static_cast<int>(run.alloc.size());

  // Stream runtime, written before the start notice so the home partition
  // reads it after the delivery barrier.
  run.home = home;
  run.rt.assign(static_cast<size_t>(run.vcpus), StreamRt{});
  for (int s = 0; s < run.vcpus; ++s) {
    StreamRt& st = run.rt[static_cast<size_t>(s)];
    st.rng = Rng(SplitMix(opts_.trace.seed ^ (vm << 8) ^ static_cast<uint64_t>(s)));
    st.remaining = run.requests_per_stream;
  }
  run.live_streams = run.vcpus;

  // Every non-home slice is covered by a lease so the orchestrator can later
  // call it home (consolidation) through the lease protocol.
  run.leases.clear();
  for (const auto& [node, slots] : run.alloc) {
    if (node == home) continue;
    run.leases.push_back(leases_->Grant(
        node, home, LeaseKind::kMemory, static_cast<uint64_t>(slots), vm,
        [this](const Lease& lease, LeaseEvent event) { OnLeaseEvent(lease, event); }));
  }

  run.status = VmStatus::kRunning;
  run.started = OrchNow();
  if (run.alloc.size() == 1) {
    ++placed_single_;
  } else {
    ++placed_aggregate_;
  }
  SampleSeries();

  RpcLayer::CallOpts o;
  o.token = PackCtl(kOpStart, vm, 0);
  rpc_->Notify(0, home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  return true;
}

// Cross-VM reclamation: find a running tenant with a lender slice whose home
// node has since freed enough capacity to absorb it, and revoke that lease —
// consolidating tenant A onto fewer nodes so the freed lender can admit
// tenant B. One revoke in flight at a time; the handback resumes admission.
bool Marketplace::TryReclaim() {
  FV_CHECK(!reclaim_in_flight_);
  for (size_t i = 0; i < vms_.size(); ++i) {
    const VmRun& run = vms_[i];
    if (run.status != VmStatus::kRunning || run.leases.empty()) continue;
    for (const LeaseId id : run.leases) {
      const Lease* lease = leases_->Find(id);
      if (lease == nullptr || !lease->active) continue;
      const int slots = static_cast<int>(lease->resource);
      const uint64_t bytes = static_cast<uint64_t>(slots) * run.mem_per_slot;
      const TenantLedger& home_ledger = ledgers_[static_cast<size_t>(lease->borrower)];
      if (home_ledger.free_vcpus() >= slots && home_ledger.free_mem() >= bytes) {
        reclaim_in_flight_ = true;
        pending_reclaim_lease_ = id;
        leases_->Revoke(id);
        return true;
      }
    }
  }
  return false;
}

void Marketplace::OnLeaseEvent(const Lease& lease, LeaseEvent event) {
  if (event != LeaseEvent::kRevoked) return;  // kReleased: voluntary, no-op
  const uint64_t vm = lease.vm;
  VmRun& run = vms_[vm - 1];
  // The handback only fires while the lease is live, and a completing VM
  // retires its leases first — so the victim is still running.
  FV_CHECK(run.status == VmStatus::kRunning);
  const NodeId lender = lease.lender;
  const NodeId home = lease.borrower;
  const int slots = static_cast<int>(lease.resource);
  const uint64_t bytes = static_cast<uint64_t>(slots) * run.mem_per_slot;

  ledgers_[static_cast<size_t>(lender)].Release(vm, bytes, slots);
  const bool ok = ledgers_[static_cast<size_t>(home)].Reserve(vm, bytes, slots);
  FV_CHECK(ok);  // admissions were paused; completions only freed capacity

  for (auto it = run.alloc.begin(); it != run.alloc.end(); ++it) {
    if (it->first == lender) {
      run.alloc.erase(it);
      break;
    }
  }
  FV_CHECK(!run.alloc.empty() && run.alloc.front().first == home);
  run.alloc.front().second += slots;
  run.span = static_cast<int>(run.alloc.size());
  run.leases.erase(std::find(run.leases.begin(), run.leases.end(), lease.id));
  ++reclaims_;
  reclaim_in_flight_ = false;
  pending_reclaim_lease_ = kInvalidLease;
  SampleSeries();

  // Tell the home partition to stop routing requests at the ex-lender.
  RpcLayer::CallOpts o;
  o.token = PackCtl(kOpCallHome, vm, static_cast<uint64_t>(lender));
  rpc_->Notify(0, home, MsgKind::kVcpuMigration, kCtrlBytes, std::move(o));
  TryAdmitAll();
}

void Marketplace::OnVmDone(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  FV_CHECK(run.status == VmStatus::kRunning);
  run.status = VmStatus::kDone;
  run.finished = OrchNow();
  ++vms_completed_;
  for (const LeaseId id : run.leases) {
    if (id == pending_reclaim_lease_) {
      // The victim finished before the in-flight revoke resolved; the ack
      // leg's Terminate will find the book entry gone and no-op.
      reclaim_in_flight_ = false;
      pending_reclaim_lease_ = kInvalidLease;
    }
    const Lease* lease = leases_->Find(id);
    if (lease != nullptr && lease->active) {
      leases_->Release(id);
    } else {
      // Grant ack still in flight (tiny VMs can finish inside one RTT).
      leases_->Drop(id);
    }
  }
  run.leases.clear();
  for (const auto& [node, slots] : run.alloc) {
    ledgers_[static_cast<size_t>(node)].ReleaseAll(vm);
  }
  SampleSeries();
  TryAdmitAll();
}

void Marketplace::SampleSeries() {
  int used_nodes = 0;
  int committed = 0;
  int stranded = 0;
  for (const TenantLedger& l : ledgers_) {
    if (l.num_tenants() == 0) continue;
    ++used_nodes;
    committed += l.committed_vcpus();
    stranded += l.free_vcpus();
  }
  const double consol =
      used_nodes == 0 ? 0.0
                      : static_cast<double>(committed) /
                            static_cast<double>(used_nodes * opts_.vcpus_per_node);
  const TimeNs t = OrchNow();
  consolidation_.Append(t, consol);
  stranded_.Append(t, static_cast<double>(stranded));
}

// --- Request streams (each VM's stream state runs on its home node's
// partition) ---

void Marketplace::OnVmStart(uint64_t vm) {
  VmRun& run = vms_[vm - 1];
  for (int s = 0; s < run.vcpus; ++s) {
    // Historical stagger: stream starts must not be one giant tie.
    const TimeNs start = Nanos(1 + static_cast<int64_t>((vm * 13 + static_cast<uint64_t>(s) * 7) % 97));
    NodeLoop(run.home)->ScheduleAfter(start, [this, vm, s] { DoRequest(vm, s); });
  }
}

void Marketplace::OnCallHome(uint64_t vm, NodeId lender) {
  VmRun& run = vms_[vm - 1];
  auto it = std::find(run.lenders.begin(), run.lenders.end(), lender);
  FV_CHECK(it != run.lenders.end());
  run.lenders.erase(it);
  ++nodes_[static_cast<size_t>(run.home)].c.reclaim_moves;
}

void Marketplace::DoRequest(uint64_t vm, int stream) {
  VmRun& run = vms_[vm - 1];
  StreamRt& st = run.rt[static_cast<size_t>(stream)];
  FV_DCHECK(st.remaining > 0);
  const NodeId home = run.home;
  st.issue = NodeLoop(home)->now();
  const bool remote = !run.lenders.empty() && st.rng.Chance(run.remote_frac);
  if (!remote) {
    ++nodes_[static_cast<size_t>(home)].c.local_requests;
    const TimeNs svc = opts_.service_ns + Nanos(static_cast<int64_t>(st.rng.UniformInt(0, 1023)));
    NodeLoop(home)->ScheduleAfter(svc, [this, vm, stream] { Complete(vm, stream); });
    return;
  }
  ++nodes_[static_cast<size_t>(home)].c.remote_requests;
  const size_t pick = static_cast<size_t>(st.rng.UniformInt(0, static_cast<int>(run.lenders.size()) - 1));
  const NodeId lender = run.lenders[pick];
  RpcLayer::CallOpts o;
  o.token = PackCtl(0, vm, static_cast<uint64_t>(stream));
  o.receiver_delay = opts_.page_service_ns;
  o.on_fail = [this, vm, stream, home] {  // runs on home's partition
    ++nodes_[static_cast<size_t>(home)].c.request_failures;
    Complete(vm, stream);
  };
  rpc_->Notify(home, lender, MsgKind::kDsmReadReq, kReqBytes, std::move(o));
}

void Marketplace::OnPageRequest(const RpcLayer::Inbound& in) {
  ++nodes_[static_cast<size_t>(in.dst)].c.served_pages;
  RpcLayer::CallOpts o;
  o.token = in.token;
  rpc_->Notify(in.dst, in.src, MsgKind::kDsmPageData, kPageBytes, std::move(o));
}

void Marketplace::OnPageReply(const RpcLayer::Inbound& in) {
  Complete(CtlVm(in.token), static_cast<int>(CtlArg(in.token)));
}

void Marketplace::Complete(uint64_t vm, int stream) {
  VmRun& run = vms_[vm - 1];
  StreamRt& st = run.rt[static_cast<size_t>(stream)];
  const NodeId home = run.home;
  nodes_[static_cast<size_t>(home)].latency.Record(
      static_cast<double>(NodeLoop(home)->now() - st.issue));
  if (--st.remaining > 0) {
    NodeLoop(home)->ScheduleAfter(opts_.think_ns, [this, vm, stream] { DoRequest(vm, stream); });
    return;
  }
  if (--run.live_streams == 0) {
    RpcLayer::CallOpts o;
    o.token = PackCtl(kOpVmDone, vm, 0);
    rpc_->Notify(home, 0, MsgKind::kControl, kCtrlBytes, std::move(o));
  }
}

// --- Snapshot (quiesce points only: a fully drained admission wave) ---

uint64_t Marketplace::ConfigFingerprint() const {
  std::string s = "marketplace-v1";
  const auto add = [&s](const std::string& v) {
    s += '|';
    s += v;
  };
  add(std::to_string(opts_.num_nodes));
  add(std::to_string(opts_.vcpus_per_node));
  add(std::to_string(opts_.mem_per_node));
  add(ArrivalKindName(opts_.trace.kind));
  add(std::to_string(opts_.trace.vms));
  add(std::to_string(opts_.trace.span));
  add(std::to_string(opts_.trace.seed));
  add(std::to_string(opts_.trace.max_vcpus));
  add(std::to_string(opts_.trace.mem_per_vcpu));
  add(std::to_string(opts_.trace.requests_per_vcpu));
  add(std::to_string(opts_.trace.remote_frac));
  add(opts_.policy);
  add(std::to_string(opts_.epochs));
  add(std::to_string(opts_.reclamation ? 1 : 0));
  add(std::to_string(opts_.think_ns));
  add(std::to_string(opts_.service_ns));
  add(std::to_string(opts_.page_service_ns));
  add(std::to_string(opts_.qos ? 1 : 0));
  add(std::to_string(opts_.coalesced_acks ? 1 : 0));
  add(std::to_string(opts_.link.latency));
  add(std::to_string(opts_.link.bytes_per_second));
  add(std::to_string(opts_.latency_jitter_ns));
  return SnapshotHashString(s);
}

std::string Marketplace::Save() {
  // The drained boundary leaves no live tenants, leases, or queued VMs —
  // only outcomes, counters, clocks, and the lease book's id/counter state
  // go on the wire.
  FV_CHECK(waiting_.empty());
  FV_CHECK(!reclaim_in_flight_);
  FV_CHECK_EQ(leases_->ActiveLeases(), 0);

  SnapshotWriter w;
  w.BeginSection("mkt.run");
  w.U64(ConfigFingerprint());
  w.U32(static_cast<uint32_t>(completed_waves_));
  w.U64(events_);

  w.BeginSection("mkt.clocks");
  for (int p = 0; p < opts_.num_nodes; ++p) {
    w.I64(ploop_->partition(p)->now());
    w.U32(ploop_->next_cancellable_token(p));
  }

  w.BeginSection("mkt.orch");
  w.U64(placed_single_);
  w.U64(placed_aggregate_);
  w.U64(delayed_);
  w.U64(reclaims_);
  w.U64(vms_completed_);
  w.U64(leases_->next_id());
  const LeaseStats& ls = leases_->stats();
  SaveCounter(&w, ls.granted);
  SaveCounter(&w, ls.renewed);
  SaveCounter(&w, ls.expired);
  SaveCounter(&w, ls.revoked);
  SaveCounter(&w, ls.released);
  SaveCounter(&w, ls.renew_failures);
  SaveCounter(&w, ls.handbacks);

  w.BeginSection("mkt.vms");
  for (const VmRun& run : vms_) {
    w.U8(static_cast<uint8_t>(run.status));
    w.U8(run.was_delayed ? 1 : 0);
    w.I64(run.submitted);
    w.I64(run.started);
    w.I64(run.finished);
    w.I64(run.home);
    w.U32(static_cast<uint32_t>(run.span));
  }

  w.BeginSection("mkt.nodes");
  for (const NodeRt& nr : nodes_) {
    w.U64(nr.c.local_requests);
    w.U64(nr.c.remote_requests);
    w.U64(nr.c.served_pages);
    w.U64(nr.c.reclaim_moves);
    w.U64(nr.c.request_failures);
    SaveHistogram(&w, nr.latency);
  }

  w.BeginSection("mkt.series");
  for (const TimeSeries* ts : {&consolidation_, &stranded_}) {
    w.U32(static_cast<uint32_t>(ts->points().size()));
    for (const auto& [t, v] : ts->points()) {
      w.I64(t);
      w.F64(v);
    }
  }

  w.BeginSection("mkt.transport");
  SaveTransportShards(&w, fabric_.get(), rpc_.get());
  return w.Finish();
}

bool Marketplace::Load(const std::string& data, std::string* error) {
  SnapshotReader r(data);
  const auto fail = [&r, error]() {
    if (error != nullptr) *error = r.error();
    return false;
  };
  if (!r.Section("mkt.run")) return fail();
  const uint64_t fingerprint = r.U64();
  const uint32_t waves_done = r.U32();
  const uint64_t events = r.U64();
  if (!r.ok()) return fail();
  if (fingerprint != ConfigFingerprint()) {
    r.FailExternal("marketplace: snapshot was taken under different MarketplaceOptions");
    return fail();
  }
  if (waves_done > static_cast<uint32_t>(opts_.epochs)) {
    r.FailExternal("marketplace: snapshot claims more completed waves than the run has");
    return fail();
  }

  if (!r.Section("mkt.clocks")) return fail();
  std::vector<TimeNs> nows;
  std::vector<uint32_t> tokens;
  nows.reserve(static_cast<size_t>(opts_.num_nodes));
  tokens.reserve(static_cast<size_t>(opts_.num_nodes));
  for (int p = 0; p < opts_.num_nodes; ++p) {
    nows.push_back(r.I64());
    tokens.push_back(r.U32());
  }
  if (!r.ok()) return fail();
  for (const TimeNs t : nows) {
    if (t < 0) {
      r.FailExternal("marketplace: negative virtual clock");
      return fail();
    }
  }

  if (!r.Section("mkt.orch")) return fail();
  const uint64_t placed_single = r.U64();
  const uint64_t placed_aggregate = r.U64();
  const uint64_t delayed = r.U64();
  const uint64_t reclaims = r.U64();
  const uint64_t completed = r.U64();
  const uint64_t lease_next = r.U64();
  LeaseStats staged_lease;
  LoadCounter(&r, &staged_lease.granted);
  LoadCounter(&r, &staged_lease.renewed);
  LoadCounter(&r, &staged_lease.expired);
  LoadCounter(&r, &staged_lease.revoked);
  LoadCounter(&r, &staged_lease.released);
  LoadCounter(&r, &staged_lease.renew_failures);
  LoadCounter(&r, &staged_lease.handbacks);
  if (!r.ok()) return fail();
  if (lease_next == kInvalidLease) {
    r.FailExternal("marketplace: invalid lease id counter");
    return fail();
  }

  if (!r.Section("mkt.vms")) return fail();
  std::vector<VmRun> staged_vms = vms_;  // keep the trace-derived shape
  for (VmRun& run : staged_vms) {
    const uint8_t status = r.U8();
    run.was_delayed = r.U8() != 0;
    run.submitted = r.I64();
    run.started = r.I64();
    run.finished = r.I64();
    run.home = static_cast<NodeId>(r.I64());
    run.span = static_cast<int>(r.U32());
    if (!r.ok()) return fail();
    if (status != static_cast<uint8_t>(VmStatus::kPending) &&
        status != static_cast<uint8_t>(VmStatus::kDone)) {
      r.FailExternal("marketplace: snapshot holds a live VM (not a wave boundary)");
      return fail();
    }
    run.status = static_cast<VmStatus>(status);
    if (run.status == VmStatus::kDone &&
        (run.home < 0 || run.home >= opts_.num_nodes || run.span < 1 ||
         run.span > opts_.num_nodes)) {
      r.FailExternal("marketplace: VM outcome out of range");
      return fail();
    }
  }

  if (!r.Section("mkt.nodes")) return fail();
  std::vector<NodeRt> staged_nodes(nodes_.size());
  for (NodeRt& nr : staged_nodes) {
    nr.c.local_requests = r.U64();
    nr.c.remote_requests = r.U64();
    nr.c.served_pages = r.U64();
    nr.c.reclaim_moves = r.U64();
    nr.c.request_failures = r.U64();
    LoadHistogram(&r, &nr.latency);
  }
  if (!r.ok()) return fail();

  if (!r.Section("mkt.series")) return fail();
  TimeSeries staged_consol;
  TimeSeries staged_stranded;
  for (TimeSeries* ts : {&staged_consol, &staged_stranded}) {
    const uint32_t count = r.U32();
    if (!r.ok()) return fail();
    for (uint32_t i = 0; i < count; ++i) {
      const TimeNs t = r.I64();
      const double v = r.F64();
      if (!r.ok()) return fail();
      ts->Append(t, v);
    }
  }

  if (!r.Section("mkt.transport")) return fail();
  TransportShards staged_transport;
  LoadTransportShards(&r, fabric_.get(), &staged_transport);
  if (!r.AtEnd()) return fail();

  // Commit.
  for (int p = 0; p < opts_.num_nodes; ++p) {
    ploop_->partition(p)->AdvanceTo(nows[static_cast<size_t>(p)]);
    ploop_->RestoreCancellableToken(p, tokens[static_cast<size_t>(p)]);
  }
  vms_ = std::move(staged_vms);
  nodes_ = std::move(staged_nodes);
  consolidation_ = std::move(staged_consol);
  stranded_ = std::move(staged_stranded);
  placed_single_ = placed_single;
  placed_aggregate_ = placed_aggregate;
  delayed_ = delayed;
  reclaims_ = reclaims;
  vms_completed_ = completed;
  leases_->RestoreNextId(lease_next);
  *leases_->mutable_stats() = staged_lease;
  CommitTransportShards(staged_transport, fabric_.get(), rpc_.get());
  completed_waves_ = static_cast<int>(waves_done);
  events_ = events;
  return true;
}

uint64_t Marketplace::Digest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis, folded per word
  const auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (const NodeRt& nr : nodes_) {
    mix(nr.c.local_requests);
    mix(nr.c.remote_requests);
    mix(nr.c.served_pages);
    mix(nr.c.reclaim_moves);
    mix(nr.c.request_failures);
    mix(nr.latency.count());
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      mix(nr.latency.bucket(i));
    }
  }
  for (const VmRun& run : vms_) {
    mix(static_cast<uint64_t>(run.status));
    mix(static_cast<uint64_t>(run.submitted));
    mix(static_cast<uint64_t>(run.started));
    mix(static_cast<uint64_t>(run.finished));
    mix(static_cast<uint64_t>(static_cast<int64_t>(run.home)));
    mix(static_cast<uint64_t>(run.span));
  }
  mix(placed_single_);
  mix(placed_aggregate_);
  mix(delayed_);
  mix(reclaims_);
  mix(vms_completed_);
  return h;
}

MarketplaceResult Marketplace::Run(const MarketplaceRunConfig& cfg) {
  for (int wave = completed_waves_; wave < opts_.epochs; ++wave) {
    ScheduleWaveArrivals(wave);
    RunEngine();
    CheckWaveDrained(wave);
    completed_waves_ = wave + 1;
    if (cfg.snapshot_out != nullptr && completed_waves_ == cfg.snapshot_epoch) {
      *cfg.snapshot_out = Save();
    }
  }

  MarketplaceResult r;
  r.per_node.reserve(nodes_.size());
  for (const NodeRt& nr : nodes_) {
    r.per_node.push_back(nr.c);
    r.totals.Accumulate(nr.c);
    r.latency.Accumulate(nr.latency);
  }
  r.placed_single = placed_single_;
  r.placed_aggregate = placed_aggregate_;
  r.delayed = delayed_;
  r.reclaims = reclaims_;
  r.vms_completed = vms_completed_;
  r.lease = leases_->stats();
  r.vms.reserve(vms_.size());
  for (size_t i = 0; i < vms_.size(); ++i) {
    const VmRun& run = vms_[i];
    VmOutcome o;
    o.vm = i + 1;
    o.vcpus = run.vcpus;
    o.submitted = run.submitted;
    o.started = run.started;
    o.finished = run.finished;
    o.home = run.home;
    o.span_nodes = run.span;
    o.completed = run.status == VmStatus::kDone;
    r.vms.push_back(o);
  }
  r.consolidation = consolidation_;
  r.stranded = stranded_;
  r.finish_time = ploop_->now_max();
  r.events_dispatched = events_;
  r.state_digest = Digest();
  r.fabric = fabric_->MergedStats();
  r.rpc = rpc_->MergedStats();
  r.threads = threads_;
  r.core = ploop_->stats();
  return r;
}

}  // namespace

void MarketplaceNodeCounters::Accumulate(const MarketplaceNodeCounters& o) {
  local_requests += o.local_requests;
  remote_requests += o.remote_requests;
  served_pages += o.served_pages;
  reclaim_moves += o.reclaim_moves;
  request_failures += o.request_failures;
}

MarketplaceResult RunMarketplace(const MarketplaceOptions& opts, int threads) {
  return RunMarketplaceEx(opts, threads, MarketplaceRunConfig{});
}

MarketplaceResult RunMarketplaceEx(const MarketplaceOptions& opts, int threads,
                                   const MarketplaceRunConfig& cfg) {
  if (cfg.snapshot_out != nullptr) {
    FV_CHECK_GE(cfg.snapshot_epoch, 1);
    FV_CHECK_LE(cfg.snapshot_epoch, opts.epochs);
  }
  Marketplace mkt(opts, threads);
  if (cfg.snapshot_in != nullptr) {
    std::string err;
    if (!mkt.Load(*cfg.snapshot_in, &err)) {
      if (cfg.error == nullptr) {
        std::fprintf(stderr, "marketplace snapshot load failed: %s\n", err.c_str());
        std::abort();
      }
      *cfg.error = err;
      return MarketplaceResult{};
    }
  }
  return mkt.Run(cfg);
}

std::string MarketplaceReport(const MarketplaceResult& r) {
  // Deliberately engine-bookkeeping-free: no thread count, no parallel-core
  // stats. Two runs satisfy the determinism contract iff these bytes match.
  std::string out;
  out.reserve(4096 + r.per_node.size() * 96 + r.vms.size() * 96);
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  const auto u = [](uint64_t v) { return std::to_string(v); };
  // Doubles go through a fixed format so the bytes are a pure function of
  // the (deterministic) value.
  const auto f = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string(buf);
  };
  line("finish_ns=" + std::to_string(r.finish_time));
  line("digest=" + u(r.state_digest));
  line("totals local=" + u(r.totals.local_requests) + " remote=" + u(r.totals.remote_requests) +
       " served_pages=" + u(r.totals.served_pages) + " reclaim_moves=" +
       u(r.totals.reclaim_moves) + " failures=" + u(r.totals.request_failures));
  line("latency count=" + u(r.latency.count()) + " p50_ns=" +
       u(static_cast<uint64_t>(r.latency.Percentile(50))) + " p99_ns=" +
       u(static_cast<uint64_t>(r.latency.Percentile(99))) + " max_ns=" +
       u(static_cast<uint64_t>(r.latency.max())));
  line("placement single=" + u(r.placed_single) + " aggregate=" + u(r.placed_aggregate) +
       " delayed=" + u(r.delayed) + " reclaims=" + u(r.reclaims) + " completed=" +
       u(r.vms_completed));
  line("lease granted=" + u(r.lease.granted.value()) + " revoked=" + u(r.lease.revoked.value()) +
       " released=" + u(r.lease.released.value()) + " handbacks=" + u(r.lease.handbacks.value()));
  line("consolidation mean=" + f(r.consolidation.MeanValue()) + " final=" +
       f(r.consolidation.empty() ? 0.0 : r.consolidation.points().back().second));
  line("stranded mean=" + f(r.stranded.MeanValue()) + " final=" +
       f(r.stranded.empty() ? 0.0 : r.stranded.points().back().second));
  line("fabric messages=" + u(r.fabric.total_messages.value()) + " bytes=" +
       u(r.fabric.total_bytes.value()));
  line("rpc calls=" + u(r.rpc.calls.value()) + " notifies=" + u(r.rpc.notifies.value()) +
       " failures=" + u(r.rpc.call_failures.value()));
  for (size_t n = 0; n < r.per_node.size(); ++n) {
    const MarketplaceNodeCounters& c = r.per_node[n];
    line("node " + std::to_string(n) + " local=" + u(c.local_requests) + " remote=" +
         u(c.remote_requests) + " served=" + u(c.served_pages) + " moves=" +
         u(c.reclaim_moves) + " failures=" + u(c.request_failures));
  }
  for (const VmOutcome& o : r.vms) {
    line("vm " + u(o.vm) + " vcpus=" + std::to_string(o.vcpus) + " submit_ns=" +
         std::to_string(o.submitted) + " start_ns=" + std::to_string(o.started) +
         " finish_ns=" + std::to_string(o.finished) + " home=" + std::to_string(o.home) +
         " span=" + std::to_string(o.span_nodes) + " done=" + (o.completed ? "1" : "0"));
  }
  return out;
}

}  // namespace fragvisor
