// Deterministic cluster chaos campaign (DESIGN.md §12.5): sweeps seeded
// crash / partition / jitter schedules over a base marketplace configuration
// and checks cluster-level invariants on every run.
//
// The campaign is itself deterministic: fault schedules are pure functions
// of (mode, seed), every run goes through RunMarketplace on the conservative
// parallel core, and the report is byte-identical at any worker count. Each
// run is additionally re-executed at `verify_threads` and the two
// MarketplaceReport() byte streams compared — a mismatch is an invariant
// violation like any other.

#ifndef FRAGVISOR_SRC_CLUSTER_CHAOS_H_
#define FRAGVISOR_SRC_CLUSTER_CHAOS_H_

#include <string>
#include <vector>

#include "src/cluster/marketplace.h"

namespace fragvisor {

enum class ChaosMode {
  kCrash = 0,      // two staggered node crashes (the first hits node 0)
  kPartition = 1,  // a healed link partition mid-wave
  kJitter = 2,     // stochastic drop + duplication + extra delay
};

const char* ChaosModeName(ChaosMode mode);

struct ChaosCampaignOptions {
  MarketplaceOptions base;  // faults/failover fields are overwritten per run
  int seeds = 3;            // runs per mode
  uint64_t seed0 = 1;       // first seed; run i uses seed0 + i
  bool crash = true;
  bool partition = true;
  bool jitter = true;
  int threads = 1;
  int verify_threads = 2;   // second execution for the byte-compare (0 = off)
};

struct ChaosRunResult {
  ChaosMode mode = ChaosMode::kCrash;
  uint64_t seed = 0;
  MarketplaceResult result;
  std::vector<std::string> violations;  // empty = all invariants held
};

struct ChaosCampaignResult {
  std::vector<ChaosRunResult> runs;
  uint64_t total_violations = 0;
};

// Derives the deterministic fault schedule a campaign run uses (exposed so
// tests and the CLI can reproduce a single run).
MarketplaceFaultOptions MakeChaosFaults(const MarketplaceOptions& base, ChaosMode mode,
                                        uint64_t seed);

// Cluster-level invariants over a finished run; returns human-readable
// violation strings (empty = pass):
//  * exactly-once: every VM completed xor failed, and the counts add up;
//  * lease conservation: every granted lease was terminated exactly once
//    (released/revoked/expired/lost) or scrubbed (dropped/orphaned/
//    failover-cleared), nothing double-booked or stranded;
//  * reclamation consistency: revocations == consolidations arbitrated;
//  * ledger residue: no committed slots survive the final drain.
std::vector<std::string> CheckClusterInvariants(const MarketplaceOptions& opts,
                                                const MarketplaceResult& r);

ChaosCampaignResult RunChaosCampaign(const ChaosCampaignOptions& opts);

// Canonical line-oriented campaign summary (byte-identical across worker
// counts, like MarketplaceReport).
std::string ChaosCampaignReport(const ChaosCampaignResult& r);

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CLUSTER_CHAOS_H_
