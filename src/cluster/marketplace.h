// The cluster marketplace: many aggregate VMs competing for borrowable
// resources on a shared multi-tenant cluster (DESIGN.md §11).
//
// A cluster::Orchestrator resident on node 0 admits VMs from an open-loop
// arrival trace against the per-node TenantLedgers, using a pluggable
// PlacementPolicy (fragbff vs harvest). A VM that fits on one node runs
// whole; otherwise it runs as an aggregate VM over fragments, every non-home
// slice covered by a host::LeaseManager lease. When a VM cannot be admitted,
// the orchestrator arbitrates cross-VM reclamation: it revokes a running
// tenant's lease whose share can be called home (the tenant's home node has
// since freed up), consolidating tenant A onto fewer nodes to admit tenant B.
//
// Admitted VMs push FaaS-style open-loop request streams from their home
// node's partition: local requests burn handler compute, remote requests
// fetch a page from a lender slice over the fabric (kDsmReadReq /
// kDsmPageData). Everything is partition-local by construction — the
// orchestrator state (ledgers, lease book, waiting queue) lives on node 0's
// partition, each VM's runtime state on its home partition, each node's
// counters and latency shard on its own partition — so the marketplace runs
// on the conservative parallel core byte-identically at any worker count.
//
// Epochs: the trace is split into `epochs` admission waves; every wave runs
// until the cluster fully drains (all admitted VMs complete), which is the
// whole-sim snapshot quiesce point, exactly as in workload/dsmstorm.

#ifndef FRAGVISOR_SRC_CLUSTER_MARKETPLACE_H_
#define FRAGVISOR_SRC_CLUSTER_MARKETPLACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/arrival.h"
#include "src/host/lease_manager.h"
#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/sim/fault_plan.h"
#include "src/sim/parallel_loop.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fragvisor {

// Deterministic fault schedule for a marketplace run (DESIGN.md §12). Empty
// by default: a run with `!any()` attaches no fault plan, arms no failover
// machinery, and is byte-identical to a pre-fault-tolerance run.
struct MarketplaceFaultOptions {
  uint64_t seed = 1;            // fault-plan RNG seed (per-node streams)
  double drop_prob = 0.0;       // default-link stochastic loss
  double dup_prob = 0.0;        // default-link duplication
  TimeNs extra_delay_max = 0;   // default-link uniform extra queueing delay

  struct Crash {
    int node = -1;
    TimeNs at = 0;
  };
  struct Restart {
    int node = -1;
    TimeNs at = 0;
  };
  struct Partition {
    int a = -1;
    int b = -1;
    TimeNs from = 0;
    TimeNs until = 0;
  };
  std::vector<Crash> crashes;
  std::vector<Restart> restarts;
  std::vector<Partition> partitions;

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || extra_delay_max > 0 || !crashes.empty() ||
           !restarts.empty() || !partitions.empty();
  }
};

// Orchestrator-failover tuning. Only consulted when faults are configured.
struct MarketplaceFailoverOptions {
  TimeNs heartbeat_ns = Micros(150);      // orchestrator -> successor beats
  double fail_phi = 8.0;                  // phi threshold for takeover
  int phi_window = 16;                    // beat inter-arrival samples kept
  TimeNs probe_interval_ns = Millis(2);   // orchestrator liveness probe cadence
  TimeNs done_retry_ns = Micros(500);     // home-side done-notify redirect gap
  int done_retry_limit = 200;             // redirect attempts before giving up
};

struct MarketplaceOptions {
  int num_nodes = 64;
  int vcpus_per_node = 8;           // committed vCPU slots per node
  uint64_t mem_per_node = 32ull << 30;
  ArrivalTraceOptions trace;        // vms, kind, span, sizes, request budgets
  std::string policy = "fragbff";   // or "harvest"
  int epochs = 1;                   // admission waves, each fully drained
  bool reclamation = true;          // lease-revocation consolidation on/off

  // Per-request costs (FaaS-handler scale).
  TimeNs think_ns = Micros(1);         // open-loop gap between requests
  TimeNs service_ns = Micros(4);       // local handler compute
  TimeNs page_service_ns = Micros(2);  // lender-side page fetch cost

  // Messaging-layer features (exercises the parallel QoS / coalesced paths).
  bool qos = false;
  bool coalesced_acks = false;

  LinkParams link = LinkParams::InfiniBand56G();
  TimeNs latency_jitter_ns = Nanos(700);
  // Fabric topology; the default full mesh is byte-identical to every run
  // before the topology existed.
  TopologyConfig topology;

  // Transport fast paths (both inert by default, byte-identical off).
  // rdma_read: remote page fetches are one-sided reads — no lender-side CPU
  // service (page_service_ns is skipped), the borrower pays the link's
  // one_sided_setup cost up front instead.
  bool rdma_read = false;
  // compress: page replies ship at a modeled compressed size (deterministic
  // per-page compressibility class keyed on compress_seed).
  bool compress = false;
  uint64_t compress_seed = 0xC0DEC0DEull;

  // Fault injection + failover (inert when faults.any() is false).
  MarketplaceFaultOptions faults;
  MarketplaceFailoverOptions failover;
};

// Per-node marketplace counters, each owned by that node's partition.
struct MarketplaceNodeCounters {
  uint64_t local_requests = 0;   // requests of VMs homed here served locally
  uint64_t remote_requests = 0;  // requests homed here that went to a lender
  uint64_t served_pages = 0;     // lender-side page fetches served here
  uint64_t reclaim_moves = 0;    // lender shares this home absorbed back
  uint64_t request_failures = 0; // reliable-channel give-ups observed here

  void Accumulate(const MarketplaceNodeCounters& o);
};

// Why a VM ended kFailed (0 = it did not fail).
enum class VmFailReason : uint8_t {
  kNone = 0,
  kHomeCrash = 1,   // the node homing the VM died; co-tenants untouched
  kOrchLost = 2,    // orphaned by an orchestrator death nothing recovered
  kCapacity = 3,    // surviving cluster can never fit it
};

const char* VmFailReasonName(VmFailReason reason);

struct VmOutcome {
  uint64_t vm = 0;
  int vcpus = 0;
  TimeNs submitted = 0;
  TimeNs started = 0;   // admission instant
  TimeNs finished = 0;
  NodeId home = kInvalidNode;
  int span_nodes = 0;   // nodes in the placement (1 = whole, >1 = aggregate)
  bool completed = false;
  bool failed = false;  // exactly-once: completed xor failed once terminal
  VmFailReason fail_reason = VmFailReason::kNone;
};

struct MarketplaceResult {
  std::vector<MarketplaceNodeCounters> per_node;
  MarketplaceNodeCounters totals;
  Histogram latency;  // request latency, merged across per-home-node shards

  // Orchestrator outcomes.
  uint64_t placed_single = 0;
  uint64_t placed_aggregate = 0;
  uint64_t delayed = 0;        // VMs that had to wait for capacity
  uint64_t reclaims = 0;       // lease revocations that consolidated a tenant
  uint64_t vms_completed = 0;
  LeaseStats lease;            // the lease book's own counters (copied)
  std::vector<VmOutcome> vms;

  // Cluster efficiency over time, sampled at every admission/completion/
  // reclaim: consolidation = committed slots / (nodes-in-use * slots-per-
  // node); stranded = free slots on partially-occupied nodes.
  TimeSeries consolidation;
  TimeSeries stranded;

  TimeNs finish_time = 0;
  uint64_t events_dispatched = 0;  // worker-count-invariant, engine-specific
  uint64_t state_digest = 0;

  FabricStats fabric;  // merged across shards
  RpcStats rpc;        // merged

  // Fault-tolerance outcomes (all zero when no fault plan was attached).
  bool used_fault_plan = false;
  uint64_t vms_failed = 0;
  uint64_t failovers = 0;             // orchestrator takeovers (mid- or inter-wave)
  uint64_t nodes_died = 0;            // death declarations by the live orchestrator
  uint64_t lender_replacements = 0;   // dead lender slice re-placed on a survivor
  uint64_t lender_degradations = 0;   // dead lender slice dropped (graceful degrade)
  uint64_t journal_records = 0;       // replication deltas shipped to the successor
  uint64_t late_dones = 0;            // completions that raced a failure verdict
  uint64_t ledger_residue_slots = 0;  // committed slots left after final drain (must be 0)
  Histogram detection_ns;             // crash -> orchestrator death declaration
  Histogram recovery_ns;              // crash -> victim lease re-placed/degraded
  FaultPlanStats faults;              // merged fault-plan shards
  RetryStats retry;                   // merged reliable-channel shards
  std::vector<TimeNs> wave_finish_ns; // engine-drain instant per completed wave

  int threads = 0;
  ParallelEventLoop::RunStats core;
};

// Runs the marketplace to completion on the parallel engine (one partition
// per node; threads >= 1 workers). The result is byte-identical across
// worker counts.
MarketplaceResult RunMarketplace(const MarketplaceOptions& opts, int threads);

// Snapshot hooks, following workload/dsmstorm's RunStormEx contract.
struct MarketplaceRunConfig {
  // Save: serialize the whole-sim state once `snapshot_epoch` admission
  // waves (1-based) have completed; the run then continues as usual.
  std::string* snapshot_out = nullptr;
  int snapshot_epoch = 0;

  // Load: resume from this snapshot instead of starting at wave 0. Every
  // MarketplaceOptions field must match the saving run; the worker count may
  // differ. A resumed run's MarketplaceReport() is byte-identical to the
  // uninterrupted run's.
  const std::string* snapshot_in = nullptr;

  // Load-failure sink; without one a load failure aborts.
  std::string* error = nullptr;
};

MarketplaceResult RunMarketplaceEx(const MarketplaceOptions& opts, int threads,
                                   const MarketplaceRunConfig& cfg);

// Canonical, line-oriented dump of everything the determinism contract
// covers (no thread count, no engine bookkeeping). Byte-compare two of
// these to compare two runs.
std::string MarketplaceReport(const MarketplaceResult& r);

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CLUSTER_MARKETPLACE_H_
