// Cluster placement policies (DESIGN.md §11).
//
// The single-VM schedulers in src/sched/ answer "where do one VM's vCPUs
// go" against a private capacity vector. Here their two strategies are
// lifted into pluggable cluster policies that operate on the live per-node
// free/borrowable vectors the orchestrator derives from the TenantLedgers:
//
//  * fragbff — best-fit-first with fragment aggregation (sched/fragbff's
//    kMinFragmentation): place whole on the tightest-fitting single node;
//    when nothing fits whole, aggregate the smallest usable fragments so
//    full nodes stay available for future whole placements.
//  * harvest — harvest-aware scoring (sched/harvest's idle-capacity view):
//    take the largest idle fragments first, spanning the fewest nodes, the
//    way a harvest scheduler steers work at the most-idle machines.
//
// A policy returns a slot allocation only; memory placement (home first,
// overflow borrowed under lease) is the orchestrator's job.

#ifndef FRAGVISOR_SRC_CLUSTER_PLACEMENT_H_
#define FRAGVISOR_SRC_CLUSTER_PLACEMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/fabric.h"

namespace fragvisor {

// The orchestrator's live view of one node, derived from its TenantLedger.
struct NodeCapacityView {
  NodeId node = kInvalidNode;
  int free_vcpus = 0;
  uint64_t free_mem = 0;
  int vcpu_capacity = 0;
  uint64_t mem_capacity = 0;
  int tenants = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;

  // Chooses a {node -> vCPU slots} allocation covering `vcpus` slots, where
  // every slot carries `mem_per_slot` bytes the same node must also host (a
  // slice hosts its own memory): a node's usable capacity is
  // min(free_vcpus, free_mem / mem_per_slot). Returns an empty map when the
  // cluster cannot host the VM right now. Deterministic: a pure function of
  // (nodes, vcpus, mem_per_slot).
  virtual std::map<NodeId, int> Place(const std::vector<NodeCapacityView>& nodes,
                                      int vcpus, uint64_t mem_per_slot) = 0;
};

// "fragbff" or "harvest"; returns nullptr for anything else.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const std::string& name);

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CLUSTER_PLACEMENT_H_
