// Snapshot serializers for the transport-layer state blocks (fabric, retry,
// rpc, fault-plan). These compose the src/sim/state_io.h primitives into
// whole-struct save/load pairs that workloads use to build whole-sim
// snapshots (DESIGN.md §10).
//
// Stats shards merge by summation, so a saver may fold MergedStats() into
// the stream and a loader may restore the merged block into any single
// shard: every observable view (reports read only merged stats) is
// identical. Fault-plan RNG streams are NOT mergeable — they drive future
// perturbation draws and restore stream-for-stream.

#ifndef FRAGVISOR_SRC_CKPT_SIM_SNAPSHOT_H_
#define FRAGVISOR_SRC_CKPT_SIM_SNAPSHOT_H_

#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/sim/fault_plan.h"
#include "src/sim/snapshot.h"

namespace fragvisor {

void SaveFabricStats(SnapshotWriter* w, const FabricStats& s);
void LoadFabricStats(SnapshotReader* r, FabricStats* s);

void SaveRetryStats(SnapshotWriter* w, const RetryStats& s);
void LoadRetryStats(SnapshotReader* r, RetryStats* s);

void SaveRpcStats(SnapshotWriter* w, const RpcStats& s);
void LoadRpcStats(SnapshotReader* r, RpcStats* s);

void SaveFaultPlanStats(SnapshotWriter* w, const FaultPlanStats& s);
void LoadFaultPlanStats(SnapshotReader* r, FaultPlanStats* s);

// Complete replayable fault-plan state: the legacy draw stream, every
// per-node draw stream, and the merged perturbation counters. The load side
// requires a plan built from the same schedule (same seed, same
// EnablePerNodeStreams width) — the stream count is validated, and a
// mismatch latches an error without touching the plan.
void SaveFaultPlanState(SnapshotWriter* w, FaultPlan* plan);
void LoadFaultPlanState(SnapshotReader* r, FaultPlan* plan);

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CKPT_SIM_SNAPSHOT_H_
