// Snapshot serializers for the transport-layer state blocks (fabric, retry,
// rpc, fault-plan). These compose the src/sim/state_io.h primitives into
// whole-struct save/load pairs that workloads use to build whole-sim
// snapshots (DESIGN.md §10).
//
// Transport stats are sharded per sending node in parallel mode, and the
// shards ARE observable (per-node stats tables in reports), so snapshots
// save and restore them shard-for-shard via Save/LoadTransportShards —
// collapsing the merged totals into shard 0 would make a resumed run's
// per-node tables diverge from an unsnapshotted one. Fault-plan RNG streams
// are likewise per-node and restore stream-for-stream; only the fault-plan
// perturbation counters merge by summation (reports read only their sum).

#ifndef FRAGVISOR_SRC_CKPT_SIM_SNAPSHOT_H_
#define FRAGVISOR_SRC_CKPT_SIM_SNAPSHOT_H_

#include <vector>

#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/sim/fault_plan.h"
#include "src/sim/snapshot.h"

namespace fragvisor {

void SaveFabricStats(SnapshotWriter* w, const FabricStats& s);
void LoadFabricStats(SnapshotReader* r, FabricStats* s);

void SaveRetryStats(SnapshotWriter* w, const RetryStats& s);
void LoadRetryStats(SnapshotReader* r, RetryStats* s);

void SaveRpcStats(SnapshotWriter* w, const RpcStats& s);
void LoadRpcStats(SnapshotReader* r, RpcStats* s);

// Per-shard transport stats: one (fabric, retry, rpc) triple per sending
// node in parallel mode, a single triple (the global blocks) in serial mode.
struct TransportShards {
  std::vector<FabricStats> fabric;
  std::vector<RetryStats> retry;
  std::vector<RpcStats> rpc;
};

// Writes the shard count followed by each shard's three blocks.
void SaveTransportShards(SnapshotWriter* w, Fabric* fabric, RpcLayer* rpc);

// Stages the stream into `staged`, validating the shard count against the
// live transport's mode (num_nodes shards in parallel, 1 in serial); a
// mismatch latches an external error and leaves `staged` unusable. Callers
// commit with CommitTransportShards once the whole snapshot validates.
void LoadTransportShards(SnapshotReader* r, const Fabric* fabric, TransportShards* staged);
void CommitTransportShards(const TransportShards& staged, Fabric* fabric, RpcLayer* rpc);

void SaveFaultPlanStats(SnapshotWriter* w, const FaultPlanStats& s);
void LoadFaultPlanStats(SnapshotReader* r, FaultPlanStats* s);

// Complete replayable fault-plan state: the legacy draw stream, every
// per-node draw stream, and the merged perturbation counters. The load side
// requires a plan built from the same schedule (same seed, same
// EnablePerNodeStreams width) — the stream count is validated, and a
// mismatch latches an error without touching the plan.
void SaveFaultPlanState(SnapshotWriter* w, FaultPlan* plan);
void LoadFaultPlanState(SnapshotReader* r, FaultPlan* plan);

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CKPT_SIM_SNAPSHOT_H_
