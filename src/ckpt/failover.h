// Checkpoint-based fault tolerance for Aggregate VMs (Sec. 4, "Reliability" +
// Sec. 6.4).
//
// A FailoverManager protects Aggregate VMs with two mechanisms:
//
//  * preemptive evacuation — when the health monitor reports a node
//    kDegraded (MCA correctable-error threshold), every protected vCPU on
//    that node is live-migrated to a healthy node before the hardware dies;
//
//  * checkpoint/restart — periodic distributed checkpoints; when a node
//    kFails, the VM is restored from the last image: surviving slices pause,
//    the image is read back and redistributed, pages owned by the dead node
//    are re-homed, vCPUs from the dead node restart on survivors, and the
//    whole VM replays the work lost since the last checkpoint.
//
// Replay approximation: the simulator cannot rewind workload state, so lost
// progress is modelled as a resume delay equal to the time since the last
// checkpoint — completion times match a real re-execution.

#ifndef FRAGVISOR_SRC_CKPT_FAILOVER_H_
#define FRAGVISOR_SRC_CKPT_FAILOVER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/host/health_monitor.h"

namespace fragvisor {

struct FailoverStats {
  Counter checkpoints_taken;
  Counter vcpus_evacuated;   // preemptive migrations off degraded nodes
  Counter failovers;         // full restore-from-checkpoint recoveries
  Summary recovery_time_ns;  // detection -> VM running again
  Summary lost_work_ns;      // replayed progress per failover
};

class FailoverManager {
 public:
  struct Config {
    TimeNs checkpoint_interval = Seconds(5);
    NodeId checkpoint_node = 0;  // where images are written (its SSD)
  };

  FailoverManager(Cluster* cluster, HealthMonitor* health, const Config& config);

  FailoverManager(const FailoverManager&) = delete;
  FailoverManager& operator=(const FailoverManager&) = delete;

  // Starts protecting `vm`: an immediate checkpoint, then periodic ones.
  // The VM must outlive the manager's protection.
  void Protect(AggregateVm* vm);

  const FailoverStats& stats() const { return stats_; }

  // Invoked after each completed recovery (tests/benches observe progress).
  void set_on_recovery(std::function<void(AggregateVm*)> cb) { on_recovery_ = std::move(cb); }

 private:
  struct Protection {
    AggregateVm* vm = nullptr;
    CheckpointInventory last_image;
    TimeNs last_checkpoint_time = 0;
    bool checkpoint_in_flight = false;
    bool recovering = false;
  };

  void TakeCheckpoint(Protection* protection);
  void ScheduleNext(Protection* protection);
  void OnHealthChange(NodeId node, NodeHealth health);
  void Evacuate(Protection* protection, NodeId node);
  void Failover(Protection* protection, NodeId failed_node);
  NodeId PickTarget(const Protection& protection, NodeId avoid) const;

  Cluster* cluster_;
  HealthMonitor* health_;
  CheckpointService checkpoints_;
  Config config_;
  std::vector<std::unique_ptr<Protection>> protections_;
  FailoverStats stats_;
  std::function<void(AggregateVm*)> on_recovery_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CKPT_FAILOVER_H_
