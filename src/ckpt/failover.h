// Checkpoint-based fault tolerance for Aggregate VMs (Sec. 4, "Reliability" +
// Sec. 6.4).
//
// A FailoverManager protects Aggregate VMs with two mechanisms:
//
//  * preemptive evacuation — when the health monitor reports a node
//    kDegraded (MCA correctable-error threshold), every protected vCPU on
//    that node is live-migrated to a healthy node before the hardware dies;
//
//  * checkpoint/restart — periodic distributed checkpoints; when a node
//    kFails, the VM is restored from the last image: surviving slices pause,
//    the image is read back and redistributed, pages owned by the dead node
//    are re-homed, vCPUs from the dead node restart on survivors, and the
//    whole VM replays the work lost since the last checkpoint.
//
// With Config::partial_recovery, the death of a *lender* node (any node
// except the DSM home/origin) takes a surgical path instead of the full
// restore: only the dead node's vCPUs pause, pages it owned are recovered in
// place — surviving read replicas are promoted to owners, and only pages
// whose sole copy died are re-read from the checkpoint image (the per-node
// dirty journal distinguishes pages actually written since the last
// checkpoint from pages whose image copy is still current) — delegated I/O
// backends re-home to a survivor, and only the lost fraction of recent work
// replays. The origin's death still triggers the full restore.
//
// Replay approximation: the simulator cannot rewind workload state, so lost
// progress is modelled as a resume delay equal to the time since the last
// checkpoint — completion times match a real re-execution.

#ifndef FRAGVISOR_SRC_CKPT_FAILOVER_H_
#define FRAGVISOR_SRC_CKPT_FAILOVER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/host/health_monitor.h"

namespace fragvisor {

// Replay-time scaling shared by every partial-recovery path: of the work a
// full restore would replay (`full`), only the fraction trapped in the lost
// part of the state (`part` of `whole`) must actually be re-executed. Zero
// when nothing was at stake.
inline TimeNs ScaledLostWork(TimeNs full, uint64_t part, uint64_t whole) {
  if (whole == 0) return 0;
  return static_cast<TimeNs>(static_cast<double>(full) * static_cast<double>(part) /
                             static_cast<double>(whole));
}

struct FailoverStats {
  Counter checkpoints_taken;
  Counter vcpus_evacuated;   // preemptive migrations off degraded nodes
  Counter failovers;         // full restore-from-checkpoint recoveries
  Summary recovery_time_ns;  // detection -> VM running again (full restore)
  Summary lost_work_ns;      // replayed progress per failover (full restore)
  Counter partial_recoveries;        // surgical lender-death recoveries
  Summary partial_recovery_time_ns;  // detection -> VM running again (partial)
  Summary partial_lost_work_ns;      // replayed progress per partial recovery
  // Tail views of the same quantities, per mechanism (p50/p99 reporting).
  Histogram evacuation_time_hist;
  Histogram recovery_time_hist;
  Histogram partial_recovery_time_hist;
};

class FailoverManager {
 public:
  struct Config {
    TimeNs checkpoint_interval = Seconds(5);
    NodeId checkpoint_node = 0;  // where images are written (its SSD)
    // Surgical recovery when a lender (non-origin) node dies; the full
    // restore remains the path for origin death. Off by default.
    bool partial_recovery = false;
  };

  FailoverManager(Cluster* cluster, HealthMonitor* health, const Config& config);

  FailoverManager(const FailoverManager&) = delete;
  FailoverManager& operator=(const FailoverManager&) = delete;

  // Starts protecting `vm`: an immediate checkpoint, then periodic ones.
  // The VM must outlive the manager's protection.
  void Protect(AggregateVm* vm);

  const FailoverStats& stats() const { return stats_; }

  // Invoked after each completed recovery (tests/benches observe progress).
  void set_on_recovery(std::function<void(AggregateVm*)> cb) { on_recovery_ = std::move(cb); }

 private:
  struct Protection {
    AggregateVm* vm = nullptr;
    CheckpointInventory last_image;
    TimeNs last_checkpoint_time = 0;
    bool checkpoint_in_flight = false;
    bool recovering = false;
  };

  void TakeCheckpoint(Protection* protection);
  void ScheduleNext(Protection* protection);
  void OnHealthChange(NodeId node, NodeHealth health);
  void Evacuate(Protection* protection, NodeId node);
  void Failover(Protection* protection, NodeId failed_node);
  void FullRestore(Protection* protection, NodeId failed_node);
  void PartialRecover(Protection* protection, NodeId failed_node);
  NodeId PickTarget(const Protection& protection, NodeId avoid) const;

  Cluster* cluster_;
  HealthMonitor* health_;
  CheckpointService checkpoints_;
  Config config_;
  std::vector<std::unique_ptr<Protection>> protections_;
  FailoverStats stats_;
  std::function<void(AggregateVm*)> on_recovery_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CKPT_FAILOVER_H_
