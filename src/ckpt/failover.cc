#include "src/ckpt/failover.h"

#include <algorithm>
#include <utility>

#include "src/sim/check.h"

namespace fragvisor {

FailoverManager::FailoverManager(Cluster* cluster, HealthMonitor* health, const Config& config)
    : cluster_(cluster), health_(health), checkpoints_(cluster), config_(config) {
  FV_CHECK(cluster != nullptr);
  FV_CHECK(health != nullptr);
  health_->AddObserver([this](NodeId node, NodeHealth h) { OnHealthChange(node, h); });
}

void FailoverManager::Protect(AggregateVm* vm) {
  FV_CHECK(vm != nullptr);
  auto protection = std::make_unique<Protection>();
  protection->vm = vm;
  Protection* p = protection.get();
  protections_.push_back(std::move(protection));
  TakeCheckpoint(p);
}

void FailoverManager::ScheduleNext(Protection* protection) {
  cluster_->loop().ScheduleAfter(config_.checkpoint_interval,
                                 [this, protection]() { TakeCheckpoint(protection); });
}

void FailoverManager::TakeCheckpoint(Protection* protection) {
  if (protection->checkpoint_in_flight || protection->recovering) {
    ScheduleNext(protection);
    return;
  }
  if (protection->vm->AllFinished()) {
    return;  // nothing left to protect
  }
  protection->checkpoint_in_flight = true;
  checkpoints_.CheckpointVm(*protection->vm, config_.checkpoint_node,
                            [this, protection](CheckpointResult result) {
                              (void)result;
                              protection->checkpoint_in_flight = false;
                              protection->last_image =
                                  InventoryFromVm(*protection->vm, cluster_->num_nodes());
                              protection->last_checkpoint_time = cluster_->loop().now();
                              // The image now covers every page; dirtiness is
                              // measured relative to this checkpoint.
                              protection->vm->dsm().ClearDirtyJournal();
                              stats_.checkpoints_taken.Add(1);
                              ScheduleNext(protection);
                            });
}

NodeId FailoverManager::PickTarget(const Protection& protection, NodeId avoid) const {
  // Prefer a healthy node already hosting part of the VM (consolidation
  // bias), else any healthy node.
  const std::vector<NodeId> healthy = health_->HealthyNodes();
  FV_CHECK(!healthy.empty());
  NodeId best = kInvalidNode;
  int best_count = -1;
  for (const NodeId n : healthy) {
    if (n == avoid) {
      continue;
    }
    int count = 0;
    for (int v = 0; v < protection.vm->num_vcpus(); ++v) {
      count += protection.vm->VcpuNode(v) == n ? 1 : 0;
    }
    if (count > best_count) {
      best = n;
      best_count = count;
    }
  }
  FV_CHECK_NE(best, kInvalidNode);
  return best;
}

void FailoverManager::OnHealthChange(NodeId node, NodeHealth health) {
  for (auto& protection : protections_) {
    if (protection->vm->AllFinished()) {
      continue;
    }
    if (health == NodeHealth::kDegraded) {
      Evacuate(protection.get(), node);
    } else if (health == NodeHealth::kFailed) {
      Failover(protection.get(), node);
    }
  }
}

void FailoverManager::Evacuate(Protection* protection, NodeId node) {
  if (protection->checkpoint_in_flight) {
    // A checkpoint may hold the vCPUs paused for its quiesce window; retry
    // after it completes (pausing a paused vCPU is invalid).
    cluster_->loop().ScheduleAfter(Millis(1),
                                   [this, protection, node]() { Evacuate(protection, node); });
    return;
  }
  AggregateVm* vm = protection->vm;
  const NodeId target = PickTarget(*protection, node);
  for (int v = 0; v < vm->num_vcpus(); ++v) {
    if (vm->VcpuNode(v) != node) {
      continue;
    }
    const int pcpu = (v + 1) % cluster_->node(target).num_pcpus();
    const TimeNs start = cluster_->loop().now();
    vm->MigrateVcpu(v, target, pcpu, [this, start]() {
      stats_.vcpus_evacuated.Add(1);
      stats_.evacuation_time_hist.Record(static_cast<double>(cluster_->loop().now() - start));
    });
  }
}

void FailoverManager::Failover(Protection* protection, NodeId failed_node) {
  if (protection->recovering) {
    return;
  }
  if (protection->checkpoint_in_flight) {
    // Let the in-flight checkpoint finish its quiesce/snapshot first, then
    // recover from it (fresher image, no pause-state conflicts).
    cluster_->loop().ScheduleAfter(Millis(1), [this, protection, failed_node]() {
      Failover(protection, failed_node);
    });
    return;
  }
  AggregateVm* vm = protection->vm;
  // Only VMs actually touching the failed node need recovery.
  bool touches = !vm->dsm().PagesOwnedBy(failed_node).empty();
  for (int v = 0; v < vm->num_vcpus() && !touches; ++v) {
    touches = vm->VcpuNode(v) == failed_node;
  }
  if (!touches) {
    return;
  }
  if (config_.partial_recovery && failed_node != vm->dsm().home()) {
    PartialRecover(protection, failed_node);
    return;
  }
  FullRestore(protection, failed_node);
}

void FailoverManager::FullRestore(Protection* protection, NodeId failed_node) {
  AggregateVm* vm = protection->vm;
  protection->recovering = true;
  const TimeNs detected_at = cluster_->loop().now();
  const TimeNs lost_work = detected_at - protection->last_checkpoint_time;
  stats_.lost_work_ns.Record(static_cast<double>(lost_work));

  // Quiesce the surviving slices (vCPUs already paused — e.g. by an
  // in-flight checkpoint — stay paused).
  struct PauseCtx {
    int pending = 0;
  };
  auto pause_ctx = std::make_shared<PauseCtx>();
  auto after_pause = [this, protection, vm, failed_node, detected_at, lost_work]() {
    checkpoints_.RestoreImage(
        protection->last_image, config_.checkpoint_node,
        [this, protection, vm, failed_node, detected_at, lost_work](CheckpointResult) {
          // Pages whose owner died are re-homed from the image.
          const NodeId target = PickTarget(*protection, failed_node);
          vm->dsm().ReseedOwnedBy(failed_node, target);
          stats_.recovery_time_ns.Record(
              static_cast<double>(cluster_->loop().now() - detected_at));
          stats_.recovery_time_hist.Record(
              static_cast<double>(cluster_->loop().now() - detected_at));
          // Replay the lost progress, then resume everyone (vCPUs from the
          // failed node restart on the target).
          cluster_->loop().ScheduleAfter(lost_work, [this, protection, vm, failed_node,
                                                     target]() {
            for (int v = 0; v < vm->num_vcpus(); ++v) {
              VCpu& vc = vm->vcpu(v);
              if (vc.life_state() != VCpu::LifeState::kPaused) {
                continue;
              }
              if (vm->VcpuNode(v) == failed_node) {
                const int pcpu = (v + 1) % cluster_->node(target).num_pcpus();
                vm->RestartVcpuAt(v, target, pcpu);
              } else {
                vm->RestartVcpuAt(v, vm->VcpuNode(v), vc.pcpu()->index());
              }
            }
            stats_.failovers.Add(1);
            protection->recovering = false;
            if (on_recovery_) {
              on_recovery_(vm);
            }
          });
        });
  };

  int to_pause = 0;
  for (int v = 0; v < vm->num_vcpus(); ++v) {
    const VCpu::LifeState state = vm->vcpu(v).life_state();
    if (state != VCpu::LifeState::kPaused && state != VCpu::LifeState::kFinished) {
      ++to_pause;
    }
  }
  pause_ctx->pending = to_pause;
  if (to_pause == 0) {
    after_pause();
    return;
  }
  for (int v = 0; v < vm->num_vcpus(); ++v) {
    const VCpu::LifeState state = vm->vcpu(v).life_state();
    if (state == VCpu::LifeState::kPaused || state == VCpu::LifeState::kFinished) {
      continue;
    }
    vm->vcpu(v).PauseWhenOffCpu([pause_ctx, after_pause]() {
      if (--pause_ctx->pending == 0) {
        after_pause();
      }
    });
  }
}

void FailoverManager::PartialRecover(Protection* protection, NodeId failed_node) {
  AggregateVm* vm = protection->vm;
  protection->recovering = true;
  const TimeNs detected_at = cluster_->loop().now();
  // What a full restore would replay; the partial path loses only the
  // fraction of it trapped in dirty pages whose sole copy died.
  const TimeNs full_lost = detected_at - protection->last_checkpoint_time;
  uint64_t total_dirty = 0;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    total_dirty += vm->dsm().DirtyPageCount(n);
  }

  auto after_pause = [this, protection, vm, failed_node, detected_at, full_lost, total_dirty]() {
    const NodeId target = PickTarget(*protection, failed_node);
    // Surviving replicas become owners in place; only sole-copy pages need
    // the image, and only the dirty ones among those cost replayed work.
    const DsmEngine::PartialLossReport report = vm->dsm().RecoverDeadOwner(failed_node, target);

    CheckpointInventory partial = protection->last_image;
    partial.vcpu_regs.clear();
    for (auto& count : partial.pages_per_node) {
      count = 0;
    }
    if (target < static_cast<NodeId>(partial.pages_per_node.size())) {
      partial.pages_per_node[static_cast<size_t>(target)] =
          report.rehomed_clean + report.lost_dirty;
    }

    checkpoints_.RestoreImage(
        partial, config_.checkpoint_node,
        [this, protection, vm, failed_node, detected_at, full_lost, total_dirty, target,
         report](CheckpointResult) {
          vm->RedelegateBackends(failed_node, target);
          const TimeNs lost_work = ScaledLostWork(full_lost, report.lost_dirty, total_dirty);
          stats_.partial_lost_work_ns.Record(static_cast<double>(lost_work));
          stats_.partial_recovery_time_ns.Record(
              static_cast<double>(cluster_->loop().now() - detected_at));
          stats_.partial_recovery_time_hist.Record(
              static_cast<double>(cluster_->loop().now() - detected_at));
          cluster_->loop().ScheduleAfter(lost_work, [this, protection, vm, failed_node,
                                                     target]() {
            for (int v = 0; v < vm->num_vcpus(); ++v) {
              if (vm->VcpuNode(v) != failed_node ||
                  vm->vcpu(v).life_state() != VCpu::LifeState::kPaused) {
                continue;
              }
              const int pcpu = (v + 1) % cluster_->node(target).num_pcpus();
              vm->RestartVcpuAt(v, target, pcpu);
            }
            stats_.partial_recoveries.Add(1);
            protection->recovering = false;
            if (on_recovery_) {
              on_recovery_(vm);
            }
          });
        });
  };

  // Quiesce only the dead node's vCPUs; survivors keep running.
  struct PauseCtx {
    int pending = 0;
  };
  auto pause_ctx = std::make_shared<PauseCtx>();
  int to_pause = 0;
  for (int v = 0; v < vm->num_vcpus(); ++v) {
    if (vm->VcpuNode(v) != failed_node) {
      continue;
    }
    const VCpu::LifeState state = vm->vcpu(v).life_state();
    if (state != VCpu::LifeState::kPaused && state != VCpu::LifeState::kFinished) {
      ++to_pause;
    }
  }
  pause_ctx->pending = to_pause;
  if (to_pause == 0) {
    after_pause();
    return;
  }
  for (int v = 0; v < vm->num_vcpus(); ++v) {
    if (vm->VcpuNode(v) != failed_node) {
      continue;
    }
    const VCpu::LifeState state = vm->vcpu(v).life_state();
    if (state == VCpu::LifeState::kPaused || state == VCpu::LifeState::kFinished) {
      continue;
    }
    vm->vcpu(v).PauseWhenOffCpu([pause_ctx, after_pause]() {
      if (--pause_ctx->pending == 0) {
        after_pause();
      }
    });
  }
}

}  // namespace fragvisor
