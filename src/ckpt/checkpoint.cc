#include "src/ckpt/checkpoint.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/sim/check.h"

namespace fragvisor {

uint64_t CheckpointInventory::total_pages() const {
  uint64_t total = 0;
  for (const uint64_t p : pages_per_node) {
    total += p;
  }
  return total;
}

CheckpointInventory InventoryFromVm(const AggregateVm& vm, int num_nodes) {
  CheckpointInventory inv;
  inv.pages_per_node.assign(static_cast<size_t>(num_nodes), 0);
  for (int n = 0; n < num_nodes; ++n) {
    inv.pages_per_node[static_cast<size_t>(n)] = vm.dsm().PagesOwnedBy(n).size();
  }
  for (int v = 0; v < vm.num_vcpus(); ++v) {
    inv.vcpu_regs.push_back(vm.vcpu(v).regs());
  }
  return inv;
}

CheckpointService::CheckpointService(Cluster* cluster) : cluster_(cluster) {
  FV_CHECK(cluster != nullptr);
}

TimeNs CheckpointService::DiskService(NodeId node, uint64_t bytes) {
  const CostModel& costs = cluster_->costs();
  TimeNs& busy = disk_busy_until_[node];
  const TimeNs start = std::max(cluster_->loop().now(), busy);
  busy = start + costs.disk_op_latency +
         FromSeconds(static_cast<double>(bytes) / costs.disk_bytes_per_second);
  return busy - cluster_->loop().now();
}

void CheckpointService::WriteImage(const CheckpointInventory& inventory, NodeId ckpt_node,
                                   std::function<void(CheckpointResult)> done) {
  struct Ctx {
    int pending = 0;
    TimeNs t0 = 0;
    CheckpointResult result;
    std::function<void(CheckpointResult)> done;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->t0 = cluster_->loop().now();
  ctx->done = std::move(done);

  auto finish_one = [this, ctx]() {
    FV_CHECK_GT(ctx->pending, 0);
    if (--ctx->pending == 0) {
      ctx->result.duration = cluster_->loop().now() - ctx->t0;
      ctx->done(ctx->result);
    }
  };

  auto disk_write = [this, ckpt_node, ctx, finish_one](uint64_t bytes) {
    ctx->result.bytes_written += bytes;
    cluster_->loop().ScheduleAfter(DiskService(ckpt_node, bytes), finish_one);
  };

  bool any = false;
  for (NodeId n = 0; n < static_cast<NodeId>(inventory.pages_per_node.size()); ++n) {
    uint64_t bytes = inventory.pages_per_node[static_cast<size_t>(n)] * 4096;
    if (bytes == 0) {
      continue;
    }
    any = true;
    if (n == ckpt_node) {
      ctx->result.local_pages += bytes / 4096;
    } else {
      ctx->result.remote_pages += bytes / 4096;
    }
    while (bytes > 0) {
      const uint64_t batch = std::min(bytes, kBatchBytes);
      bytes -= batch;
      ++ctx->pending;
      if (n == ckpt_node) {
        disk_write(batch);
      } else {
        // Remote slice streams the batch; the write starts on arrival. A
        // batch the fabric gives up on (the slice node died) is counted and
        // skipped — the checkpoint must drain, or failover deadlocks behind
        // checkpoint_in_flight. Batches are bulk-class: under the QoS
        // scheduler they yield the links to latency-critical protocol traffic.
        RpcLayer::CallOpts opts;
        opts.qos = QosClass::kBulk;
        opts.on_fail = [ctx, finish_one]() {
          ++ctx->result.lost_batches;
          finish_one();
        };
        cluster_->rpc().Call(n, ckpt_node, MsgKind::kCheckpointData, batch,
                             [disk_write, batch]() { disk_write(batch); }, std::move(opts));
      }
    }
  }
  // vCPU architectural state (small, from wherever each vCPU lives).
  const uint64_t regs_bytes = inventory.vcpu_regs.size() * 16 * 1024;
  if (regs_bytes > 0) {
    ++ctx->pending;
    any = true;
    disk_write(regs_bytes);
  }
  if (!any) {
    ++ctx->pending;
    cluster_->loop().ScheduleAfter(0, finish_one);
  }
}

void CheckpointService::CheckpointVm(AggregateVm& vm, NodeId ckpt_node,
                                     std::function<void(CheckpointResult)> done) {
  struct PauseCtx {
    int pending = 0;
    std::function<void(CheckpointResult)> done;
  };
  auto pause_ctx = std::make_shared<PauseCtx>();
  pause_ctx->pending = vm.num_vcpus();
  pause_ctx->done = std::move(done);

  auto after_pause = [this, &vm, ckpt_node, pause_ctx]() {
    const CostModel& costs = cluster_->costs();
    cluster_->loop().ScheduleAfter(costs.ckpt_quiesce, [this, &vm, ckpt_node, pause_ctx]() {
      // Copy-on-write snapshot: the VM only stays paused for the quiesce and
      // the inventory capture; the image streams to disk in the background
      // while the guest keeps running (as pre-copy/CoW checkpointing does).
      const CheckpointInventory inv = InventoryFromVm(vm, cluster_->num_nodes());
      cluster_->loop().Trace(TraceCategory::kCkpt, "checkpoint_snapshot",
                             "pages=" + std::to_string(inv.total_pages()));
      for (int v = 0; v < vm.num_vcpus(); ++v) {
        VCpu& vc = vm.vcpu(v);
        if (vc.life_state() == VCpu::LifeState::kPaused) {
          vc.ResumeOn(vc.pcpu(), vc.node());
        }
      }
      WriteImage(inv, ckpt_node,
                 [pause_ctx](CheckpointResult result) { pause_ctx->done(result); });
    });
  };

  for (int v = 0; v < vm.num_vcpus(); ++v) {
    vm.vcpu(v).PauseWhenOffCpu([pause_ctx, after_pause]() {
      if (--pause_ctx->pending == 0) {
        after_pause();
      }
    });
  }
}

void CheckpointService::RestoreImage(const CheckpointInventory& inventory, NodeId ckpt_node,
                                     std::function<void(CheckpointResult)> done) {
  struct Ctx {
    int pending = 0;
    TimeNs t0 = 0;
    CheckpointResult result;
    std::function<void(CheckpointResult)> done;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->t0 = cluster_->loop().now();
  ctx->done = std::move(done);

  auto finish_one = [this, ctx]() {
    FV_CHECK_GT(ctx->pending, 0);
    if (--ctx->pending == 0) {
      ctx->result.duration = cluster_->loop().now() - ctx->t0;
      ctx->done(ctx->result);
    }
  };

  bool any = false;
  for (NodeId n = 0; n < static_cast<NodeId>(inventory.pages_per_node.size()); ++n) {
    uint64_t bytes = inventory.pages_per_node[static_cast<size_t>(n)] * 4096;
    if (bytes == 0) {
      continue;
    }
    any = true;
    if (n == ckpt_node) {
      ctx->result.local_pages += bytes / 4096;
    } else {
      ctx->result.remote_pages += bytes / 4096;
    }
    while (bytes > 0) {
      const uint64_t batch = std::min(bytes, kBatchBytes);
      bytes -= batch;
      ++ctx->pending;
      ctx->result.bytes_written += batch;
      // Disk read, then ship to the destination slice.
      const NodeId dest = n;
      cluster_->loop().ScheduleAfter(
          DiskService(ckpt_node, batch), [this, ckpt_node, dest, batch, ctx, finish_one]() {
            if (dest == ckpt_node) {
              finish_one();
            } else {
              // An undeliverable restore batch (dead destination slice) is
              // counted and skipped so the restore always completes.
              RpcLayer::CallOpts opts;
              opts.qos = QosClass::kBulk;
              opts.on_fail = [ctx, finish_one]() {
                ++ctx->result.lost_batches;
                finish_one();
              };
              cluster_->rpc().Call(ckpt_node, dest, MsgKind::kCheckpointData, batch, finish_one,
                                   std::move(opts));
            }
          });
    }
  }
  if (!any) {
    ++ctx->pending;
    cluster_->loop().ScheduleAfter(0, finish_one);
  }
}

}  // namespace fragvisor
