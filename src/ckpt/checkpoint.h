// Distributed VM checkpoint/restart (Sec. 6.4).
//
// The checkpointing node streams the Aggregate VM's entire pseudo-physical
// memory image to its local SSD: pages resident on remote slices are fetched
// over the fabric in large batches, pipelined with the disk writes. The disk
// (500 MB/s SATA SSD) is the bottleneck, so fetching remote memory adds
// little — the paper's observation that FragVisor checkpoints cost <= 10%
// over a single-node VM.
//
// Memory inventories are expressed as per-node page counts so the same code
// handles both real (test-sized) VMs — via InventoryFromVm — and the
// 10/20/30 GB datasets of the checkpoint experiment, without materializing
// millions of page table entries.

#ifndef FRAGVISOR_SRC_CKPT_CHECKPOINT_H_
#define FRAGVISOR_SRC_CKPT_CHECKPOINT_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/aggregate_vm.h"
#include "src/host/node.h"

namespace fragvisor {

struct CheckpointInventory {
  // pages_per_node[n] = guest pages resident on node n.
  std::vector<uint64_t> pages_per_node;
  // Architectural state of every vCPU (verifiable round-trip).
  std::vector<VCpu::Regs> vcpu_regs;

  uint64_t total_pages() const;
  uint64_t total_bytes() const { return total_pages() * 4096; }
};

// Snapshot of a live VM's memory distribution and vCPU state.
CheckpointInventory InventoryFromVm(const AggregateVm& vm, int num_nodes);

struct CheckpointResult {
  TimeNs duration = 0;
  uint64_t bytes_written = 0;
  uint64_t local_pages = 0;
  uint64_t remote_pages = 0;
  // Fabric batches abandoned by the reliable channel (a slice node died mid
  // checkpoint/restore). The image is incomplete but the operation still
  // completes — a wedged checkpoint would block failover forever.
  uint64_t lost_batches = 0;
};

class CheckpointService {
 public:
  // Fabric batch size for remote page streaming.
  static constexpr uint64_t kBatchBytes = 4ull << 20;

  CheckpointService(Cluster* cluster);

  // Streams `inventory` to the SSD on `ckpt_node`. `done` receives timing.
  void WriteImage(const CheckpointInventory& inventory, NodeId ckpt_node,
                  std::function<void(CheckpointResult)> done);

  // Full checkpoint of a live VM: quiesce vCPUs, write the image, resume.
  void CheckpointVm(AggregateVm& vm, NodeId ckpt_node,
                    std::function<void(CheckpointResult)> done);

  // Restart: read the image from the SSD on `ckpt_node` and redistribute the
  // slices to `targets[n]` pages per node. `done` receives timing.
  void RestoreImage(const CheckpointInventory& inventory, NodeId ckpt_node,
                    std::function<void(CheckpointResult)> done);

 private:
  TimeNs DiskService(NodeId node, uint64_t bytes);

  Cluster* cluster_;
  std::map<NodeId, TimeNs> disk_busy_until_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_CKPT_CHECKPOINT_H_
