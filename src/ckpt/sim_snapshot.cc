#include "src/ckpt/sim_snapshot.h"

#include "src/sim/state_io.h"

namespace fragvisor {

void SaveFabricStats(SnapshotWriter* w, const FabricStats& s) {
  for (const Counter& c : s.messages) {
    SaveCounter(w, c);
  }
  for (const Counter& c : s.bytes) {
    SaveCounter(w, c);
  }
  SaveCounter(w, s.total_messages);
  SaveCounter(w, s.total_bytes);
}

void LoadFabricStats(SnapshotReader* r, FabricStats* s) {
  for (Counter& c : s->messages) {
    LoadCounter(r, &c);
  }
  for (Counter& c : s->bytes) {
    LoadCounter(r, &c);
  }
  LoadCounter(r, &s->total_messages);
  LoadCounter(r, &s->total_bytes);
}

void SaveRetryStats(SnapshotWriter* w, const RetryStats& s) {
  SaveNodeCounterSet(w, s.retransmits);
  SaveNodeCounterSet(w, s.timeouts);
  SaveNodeCounterSet(w, s.send_failures);
  SaveNodeCounterSet(w, s.dups_suppressed);
}

void LoadRetryStats(SnapshotReader* r, RetryStats* s) {
  LoadNodeCounterSet(r, &s->retransmits);
  LoadNodeCounterSet(r, &s->timeouts);
  LoadNodeCounterSet(r, &s->send_failures);
  LoadNodeCounterSet(r, &s->dups_suppressed);
}

void SaveRpcStats(SnapshotWriter* w, const RpcStats& s) {
  SaveCounter(w, s.calls);
  SaveCounter(w, s.datagrams);
  SaveCounter(w, s.call_failures);
  SaveCounter(w, s.retries);
  SaveCounter(w, s.abandons);
  SaveCounter(w, s.notifies);
  SaveCounter(w, s.multicast_rounds);
  SaveCounter(w, s.multicast_targets);
  SaveCounter(w, s.acks_coalesced);
  SaveCounter(w, s.qos_deferred);
}

void LoadRpcStats(SnapshotReader* r, RpcStats* s) {
  LoadCounter(r, &s->calls);
  LoadCounter(r, &s->datagrams);
  LoadCounter(r, &s->call_failures);
  LoadCounter(r, &s->retries);
  LoadCounter(r, &s->abandons);
  LoadCounter(r, &s->notifies);
  LoadCounter(r, &s->multicast_rounds);
  LoadCounter(r, &s->multicast_targets);
  LoadCounter(r, &s->acks_coalesced);
  LoadCounter(r, &s->qos_deferred);
}

void SaveTransportShards(SnapshotWriter* w, Fabric* fabric, RpcLayer* rpc) {
  const int shards = fabric->parallel() ? fabric->num_nodes() : 1;
  w->U32(static_cast<uint32_t>(shards));
  for (NodeId n = 0; n < shards; ++n) {
    SaveFabricStats(w, fabric->StatsShardForRestore(n));
    SaveRetryStats(w, fabric->RetryShardForRestore(n));
    SaveRpcStats(w, rpc->StatsShardForRestore(n));
  }
}

void LoadTransportShards(SnapshotReader* r, const Fabric* fabric, TransportShards* staged) {
  const uint32_t expected =
      static_cast<uint32_t>(fabric->parallel() ? fabric->num_nodes() : 1);
  const uint32_t shards = r->U32();
  if (!r->ok()) {
    return;
  }
  if (shards != expected) {
    r->FailExternal("transport: stat shard count mismatch");
    return;
  }
  staged->fabric.resize(shards);
  staged->retry.resize(shards);
  staged->rpc.resize(shards);
  for (uint32_t n = 0; r->ok() && n < shards; ++n) {
    LoadFabricStats(r, &staged->fabric[n]);
    LoadRetryStats(r, &staged->retry[n]);
    LoadRpcStats(r, &staged->rpc[n]);
  }
}

void CommitTransportShards(const TransportShards& staged, Fabric* fabric, RpcLayer* rpc) {
  for (size_t n = 0; n < staged.fabric.size(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    fabric->StatsShardForRestore(node) = staged.fabric[n];
    fabric->RetryShardForRestore(node) = staged.retry[n];
    rpc->StatsShardForRestore(node) = staged.rpc[n];
  }
}

void SaveFaultPlanStats(SnapshotWriter* w, const FaultPlanStats& s) {
  SaveCounter(w, s.messages_dropped);
  SaveCounter(w, s.messages_duplicated);
  SaveCounter(w, s.messages_delayed);
  SaveCounter(w, s.node_crashes);
  SaveCounter(w, s.node_restarts);
  SaveCounter(w, s.partitions_cut);
  SaveCounter(w, s.partitions_healed);
}

void LoadFaultPlanStats(SnapshotReader* r, FaultPlanStats* s) {
  LoadCounter(r, &s->messages_dropped);
  LoadCounter(r, &s->messages_duplicated);
  LoadCounter(r, &s->messages_delayed);
  LoadCounter(r, &s->node_crashes);
  LoadCounter(r, &s->node_restarts);
  LoadCounter(r, &s->partitions_cut);
  LoadCounter(r, &s->partitions_healed);
}

void SaveFaultPlanState(SnapshotWriter* w, FaultPlan* plan) {
  SaveRng(w, plan->mutable_rng());
  w->U32(static_cast<uint32_t>(plan->num_node_streams()));
  for (int n = 0; n < plan->num_node_streams(); ++n) {
    SaveRng(w, plan->mutable_node_rng(n));
  }
  SaveFaultPlanStats(w, plan->MergedStats());
}

void LoadFaultPlanState(SnapshotReader* r, FaultPlan* plan) {
  LoadRng(r, &plan->mutable_rng());
  const uint32_t streams = r->U32();
  if (!r->ok()) {
    return;
  }
  if (streams != static_cast<uint32_t>(plan->num_node_streams())) {
    r->FailExternal("fault_plan: per-node stream count mismatch");
    return;
  }
  for (uint32_t n = 0; n < streams; ++n) {
    LoadRng(r, &plan->mutable_node_rng(static_cast<int>(n)));
  }
  // Merged counters land in the plan's global block; per-node shards start
  // fresh and MergedStats() sums to the same totals either way.
  FaultPlanStats staged;
  LoadFaultPlanStats(r, &staged);
  if (r->ok()) {
    plan->mutable_stats() = staged;
  }
}

}  // namespace fragvisor
