// Physical server model: a set of pCPUs, RAM capacity, and locally attached
// devices. Hypervisor instances (core/hypervisor_instance.h) run on nodes.

#ifndef FRAGVISOR_SRC_HOST_NODE_H_
#define FRAGVISOR_SRC_HOST_NODE_H_

#include <memory>
#include <vector>

#include "src/host/cost_model.h"
#include "src/host/pcpu.h"
#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/sim/event_loop.h"

namespace fragvisor {

class Node {
 public:
  Node(EventLoop* loop, NodeId id, int num_pcpus, uint64_t ram_bytes, const CostModel* costs);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  int num_pcpus() const { return static_cast<int>(pcpus_.size()); }
  uint64_t ram_bytes() const { return ram_bytes_; }

  PCpu& pcpu(int index) {
    FV_CHECK_GE(index, 0);
    FV_CHECK_LT(index, num_pcpus());
    return *pcpus_[static_cast<size_t>(index)];
  }

  // Aggregate busy time across all pCPUs.
  TimeNs total_busy_time() const;

 private:
  NodeId id_;
  uint64_t ram_bytes_;
  std::vector<std::unique_ptr<PCpu>> pcpus_;
};

// The simulated testbed: nodes + interconnect + shared cost model and clock.
class Cluster {
 public:
  struct Config {
    int num_nodes = 4;
    int pcpus_per_node = 8;
    uint64_t ram_per_node = 32ull << 30;  // 32 GiB, as in the paper's servers
    LinkParams link = LinkParams::InfiniBand56G();
    CostModel costs = CostModel::Default();
    RpcConfig rpc;  // messaging-layer features (coalescing/QoS), default off
  };

  explicit Cluster(const Config& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  EventLoop& loop() { return loop_; }
  Fabric& fabric() { return *fabric_; }
  RpcLayer& rpc() { return *rpc_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) {
    FV_CHECK_GE(id, 0);
    FV_CHECK_LT(id, num_nodes());
    return *nodes_[static_cast<size_t>(id)];
  }

 private:
  EventLoop loop_;
  CostModel costs_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<RpcLayer> rpc_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_NODE_H_
