// Physical server model: a set of pCPUs, RAM capacity, and locally attached
// devices. Hypervisor instances (core/hypervisor_instance.h) run on nodes.

#ifndef FRAGVISOR_SRC_HOST_NODE_H_
#define FRAGVISOR_SRC_HOST_NODE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/host/cost_model.h"
#include "src/host/pcpu.h"
#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/sim/event_loop.h"
#include "src/sim/parallel_loop.h"

namespace fragvisor {

// Per-VM resource accounting on a multi-tenant node. Every byte of memory,
// vCPU slot, and delegated I/O backend a node contributes to some aggregate
// VM is tagged with the borrowing VM's id, so the cluster orchestrator can
// answer "who holds what here" and a lender can call resources home from one
// tenant without touching another's.
class TenantLedger {
 public:
  struct VmShare {
    uint64_t mem_bytes = 0;
    int vcpu_slots = 0;
    int io_backends = 0;
  };

  void Init(uint64_t mem_capacity, int vcpu_capacity) {
    mem_capacity_ = mem_capacity;
    vcpu_capacity_ = vcpu_capacity;
  }

  uint64_t mem_capacity() const { return mem_capacity_; }
  int vcpu_capacity() const { return vcpu_capacity_; }
  uint64_t committed_mem() const { return committed_mem_; }
  int committed_vcpus() const { return committed_vcpus_; }
  uint64_t free_mem() const { return mem_capacity_ - committed_mem_; }
  int free_vcpus() const { return vcpu_capacity_ - committed_vcpus_; }
  int num_tenants() const { return static_cast<int>(shares_.size()); }

  // Checked admission: fails (without side effects) if the node would
  // oversubscribe committed memory or vCPU slots.
  bool Reserve(uint64_t vm, uint64_t mem_bytes, int vcpu_slots, int io_backends = 0) {
    if (committed_mem_ + mem_bytes > mem_capacity_) return false;
    if (committed_vcpus_ + vcpu_slots > vcpu_capacity_) return false;
    ForceReserve(vm, mem_bytes, vcpu_slots, io_backends);
    return true;
  }

  // Unchecked admission, for legacy single-VM configurations that
  // deliberately overcommit (e.g. OvercommitPlacement timesharing pCPUs).
  void ForceReserve(uint64_t vm, uint64_t mem_bytes, int vcpu_slots, int io_backends = 0) {
    VmShare& s = shares_[vm];
    s.mem_bytes += mem_bytes;
    s.vcpu_slots += vcpu_slots;
    s.io_backends += io_backends;
    committed_mem_ += mem_bytes;
    committed_vcpus_ += vcpu_slots;
  }

  // Returns part of a tenant's share. Releasing more than the tenant holds
  // is a bookkeeping bug.
  void Release(uint64_t vm, uint64_t mem_bytes, int vcpu_slots, int io_backends = 0) {
    auto it = shares_.find(vm);
    FV_CHECK(it != shares_.end());
    VmShare& s = it->second;
    FV_CHECK_GE(s.mem_bytes, mem_bytes);
    FV_CHECK_GE(s.vcpu_slots, vcpu_slots);
    FV_CHECK_GE(s.io_backends, io_backends);
    s.mem_bytes -= mem_bytes;
    s.vcpu_slots -= vcpu_slots;
    s.io_backends -= io_backends;
    committed_mem_ -= mem_bytes;
    committed_vcpus_ -= vcpu_slots;
    if (s.mem_bytes == 0 && s.vcpu_slots == 0 && s.io_backends == 0) {
      shares_.erase(it);
    }
  }

  // Drops every resource `vm` holds here (VM departure / full reclamation).
  VmShare ReleaseAll(uint64_t vm) {
    auto it = shares_.find(vm);
    if (it == shares_.end()) return VmShare{};
    const VmShare s = it->second;
    committed_mem_ -= s.mem_bytes;
    committed_vcpus_ -= s.vcpu_slots;
    shares_.erase(it);
    return s;
  }

  VmShare ShareOf(uint64_t vm) const {
    auto it = shares_.find(vm);
    return it == shares_.end() ? VmShare{} : it->second;
  }

  // Ordered (by VM id) view for deterministic iteration and snapshots.
  const std::map<uint64_t, VmShare>& shares() const { return shares_; }

 private:
  uint64_t mem_capacity_ = 0;
  int vcpu_capacity_ = 0;
  uint64_t committed_mem_ = 0;
  int committed_vcpus_ = 0;
  std::map<uint64_t, VmShare> shares_;
};

class Node {
 public:
  Node(EventLoop* loop, NodeId id, int num_pcpus, uint64_t ram_bytes, const CostModel* costs);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  int num_pcpus() const { return static_cast<int>(pcpus_.size()); }
  uint64_t ram_bytes() const { return ram_bytes_; }

  PCpu& pcpu(int index) {
    FV_CHECK_GE(index, 0);
    FV_CHECK_LT(index, num_pcpus());
    return *pcpus_[static_cast<size_t>(index)];
  }

  // Aggregate busy time across all pCPUs.
  TimeNs total_busy_time() const;

  // Multi-tenant accounting: which VMs hold memory/vCPU slots/backends here.
  TenantLedger& tenants() { return tenants_; }
  const TenantLedger& tenants() const { return tenants_; }

 private:
  NodeId id_;
  uint64_t ram_bytes_;
  std::vector<std::unique_ptr<PCpu>> pcpus_;
  TenantLedger tenants_;
};

// The simulated testbed: nodes + interconnect + shared cost model and clock.
class Cluster {
 public:
  struct Config {
    int num_nodes = 4;
    int pcpus_per_node = 8;
    uint64_t ram_per_node = 32ull << 30;  // 32 GiB, as in the paper's servers
    LinkParams link = LinkParams::InfiniBand56G();
    CostModel costs = CostModel::Default();
    RpcConfig rpc;  // messaging-layer features (coalescing/QoS), default off
    // threads >= 1 hosts the cluster's clock on a ParallelEventLoop instead
    // of a plain serial EventLoop. A single VM is one coherence domain, so
    // it occupies exactly one partition (the engine clamps the worker count
    // to the partition count); the point is that the legacy workloads run on
    // the parallel engine's scheduling machinery with byte-identical output,
    // and that a Cluster can attach to cluster-owned parallel infrastructure.
    int threads = 0;
  };

  explicit Cluster(const Config& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  EventLoop& loop() { return ploop_ != nullptr ? *ploop_->partition(0) : loop_; }
  ParallelEventLoop* parallel_loop() { return ploop_.get(); }
  Fabric& fabric() { return *fabric_; }
  RpcLayer& rpc() { return *rpc_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) {
    FV_CHECK_GE(id, 0);
    FV_CHECK_LT(id, num_nodes());
    return *nodes_[static_cast<size_t>(id)];
  }

 private:
  EventLoop loop_;
  std::unique_ptr<ParallelEventLoop> ploop_;
  CostModel costs_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<RpcLayer> rpc_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_NODE_H_
