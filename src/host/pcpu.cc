#include "src/host/pcpu.h"

#include <algorithm>

#include "src/sim/check.h"

namespace fragvisor {

PCpu::PCpu(EventLoop* loop, NodeId node, int index, const CostModel* costs)
    : loop_(loop), node_(node), index_(index), costs_(costs) {
  FV_CHECK(loop != nullptr);
  FV_CHECK(costs != nullptr);
}

void PCpu::Enqueue(Schedulable* task) {
  FV_CHECK(task != nullptr);
  FV_CHECK(!IsQueuedOrRunning(task));
  run_queue_.push_back(task);
  if (current_ == nullptr) {
    DispatchNext();
  }
}

bool PCpu::RemoveQueued(Schedulable* task) {
  auto it = std::find(run_queue_.begin(), run_queue_.end(), task);
  if (it == run_queue_.end()) {
    return false;
  }
  run_queue_.erase(it);
  return true;
}

bool PCpu::IsQueuedOrRunning(const Schedulable* task) const {
  if (current_ == task) {
    return true;
  }
  return std::find(run_queue_.begin(), run_queue_.end(), task) != run_queue_.end();
}

void PCpu::DispatchNext() {
  // Callees (OnDescheduled -> Enqueue) may have already restarted dispatch.
  if (current_ != nullptr || run_queue_.empty()) {
    return;
  }
  current_ = run_queue_.front();
  run_queue_.pop_front();
  slice_remaining_ = costs_->timeslice;

  // Charge a context switch when a different thread gets the core.
  const TimeNs switch_cost = (last_ran_ != nullptr && last_ran_ != current_)
                                 ? costs_->context_switch
                                 : 0;
  last_ran_ = current_;
  RunCurrent(switch_cost);
}

void PCpu::RunCurrent(TimeNs switch_cost) {
  const Schedulable::RunResult result = current_->RunFor(slice_remaining_);
  FV_CHECK_GE(result.used, 0);
  FV_CHECK_LE(result.used, slice_remaining_);

  const TimeNs consumed = switch_cost + result.used;
  busy_time_ += consumed;
  slice_remaining_ -= result.used;
  loop_->ScheduleAfter(consumed, [this, result]() {
    Schedulable* task = current_;
    // A voluntary yield with slice budget left continues the same task: no
    // deschedule, no context switch — the task only re-synchronized with
    // simulated time (coherence events, preemption requests).
    if (result.state == Schedulable::RunState::kRunnableAgain && result.used > 0 &&
        slice_remaining_ > 0) {
      task->OnDescheduled(result.state);
      if (task->ShouldRequeue()) {
        RunCurrent(0);
        return;
      }
      current_ = nullptr;
      DispatchNext();
      return;
    }
    current_ = nullptr;
    task->OnDescheduled(result.state);
    if (result.state == Schedulable::RunState::kRunnableAgain && task->ShouldRequeue()) {
      run_queue_.push_back(task);
    }
    DispatchNext();
  });
}

}  // namespace fragvisor
