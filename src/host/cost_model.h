// Calibrated cost constants for the simulated testbed.
//
// One struct holds every latency/bandwidth/CPU constant the simulator uses, so
// experiments (and the GiantVM competitor profile) can derive variants from a
// single place. Defaults model the paper's testbed: Xeon E5-2620 v4 (2.1 GHz)
// hosts, kernel-space DSM handlers, 56 Gbps InfiniBand, SATA SSD at 500 MB/s.

#ifndef FRAGVISOR_SRC_HOST_COST_MODEL_H_
#define FRAGVISOR_SRC_HOST_COST_MODEL_H_

#include <cstdint>

#include "src/sim/time.h"

namespace fragvisor {

struct CostModel {
  // --- CPU execution ---
  double cpu_hz = 2.1e9;               // guest-visible core frequency
  TimeNs timeslice = Millis(4);        // host scheduler round-robin quantum
  TimeNs context_switch = Micros(2);   // vCPU thread switch on a pCPU
  // Multiplier on guest compute time. 1.0 for KVM-native execution
  // (FragVisor); >1 for hypervisors that bounce exits through user space
  // (GiantVM's QEMU device/timer emulation).
  double compute_dilation = 1.0;
  // Max guest time consumed per vCPU dispatch: the granularity at which a
  // computing vCPU can be interrupted (migration IPI, checkpoint quiesce) and
  // at which coherence events interleave with execution. Smaller = higher
  // fidelity, more simulator events.
  TimeNs yield_quantum = Micros(15);

  // --- DSM protocol ---
  // VM exit + EPT violation decoding before the DSM layer even runs.
  TimeNs ept_fault_vmexit = Nanos(800);
  // Kernel-space handler work per DSM protocol message (request parse, page
  // table update, rkey lookup). FragVisor runs this strictly in-kernel.
  // Calibrated so a remote read fault lands in the ~20 us range, matching
  // Popcorn-DSM-over-InfiniBand measurements.
  TimeNs dsm_handler = Micros(10);
  // Extra per-fault cost for user-space DSM implementations (GiantVM): two
  // user/kernel transitions plus QEMU dispatch on both ends.
  TimeNs dsm_userspace_extra = 0;
  // Cost of mapping the received page and resuming the vCPU.
  TimeNs dsm_map_page = Nanos(700);
  // Anti-ping-pong hold: after a write grant, competing transactions wait at
  // the directory so the new owner makes progress before losing the page
  // (standard DSM livelock avoidance; Popcorn does the same).
  TimeNs dsm_ownership_hold = Micros(45);
  // Ceiling for the adaptive ownership hold (DsmEngine::Options::
  // adaptive_granularity): under detected ping-pong the hold doubles per
  // escalation but never past this cap, so a mispredicted page cannot be
  // parked away from other writers for more than ~8 base holds.
  TimeNs dsm_ownership_hold_max = Micros(360);

  // --- Memory ---
  uint64_t page_size = 4096;
  TimeNs local_page_alloc = Nanos(300);  // anonymous page allocation in guest

  // --- Interrupts / notifications ---
  TimeNs ipi_local = Nanos(500);          // IPI between vCPUs on one node
  TimeNs ipi_to_message = Micros(1);      // turn a remote IPI into a fabric message
  TimeNs irq_inject = Nanos(600);         // inject IRQ into a running vCPU
  // Receiver-side wakeup for doorbell notifications. GiantVM helper threads
  // poll, so their profile sets this near zero (and pays pCPU tax instead).
  TimeNs notify_wakeup = Micros(3);

  // --- vCPU migration (Sec 7.3: ~86 us total incl. ~38 us register dump) ---
  TimeNs vcpu_register_dump = Micros(38);
  TimeNs vcpu_state_restore = Micros(20);
  TimeNs vcpu_migration_misc = Micros(12);  // location table update, FPU, MSRs

  // --- Paravirtual devices ---
  TimeNs vhost_kick = Micros(3);        // ioeventfd + vhost worker dispatch
  TimeNs vhost_per_packet = Micros(2);  // per-descriptor processing in vhost
  TimeNs guest_socket_hop = Micros(15); // one hop over a guest-local socket
  uint64_t io_ring_bytes_per_op = 64;   // descriptor + used-ring entry traffic

  // --- Memory copies (vhost staging, tmpfs) ---
  double memcpy_bytes_per_second = 10e9;

  // --- Storage backend ---
  double disk_bytes_per_second = 500e6;  // SATA SSD streaming write
  TimeNs disk_op_latency = Micros(80);

  // --- Checkpoint ---
  TimeNs ckpt_quiesce = Micros(200);     // pause vCPUs + flush in-flight DSM

  static CostModel Default() { return CostModel{}; }

  // Time for `cycles` of guest computation.
  constexpr TimeNs ComputeTime(uint64_t cycles) const {
    return FromSeconds(static_cast<double>(cycles) / cpu_hz);
  }
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_COST_MODEL_H_
