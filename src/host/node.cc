#include "src/host/node.h"

namespace fragvisor {

Node::Node(EventLoop* loop, NodeId id, int num_pcpus, uint64_t ram_bytes, const CostModel* costs)
    : id_(id), ram_bytes_(ram_bytes) {
  FV_CHECK_GT(num_pcpus, 0);
  pcpus_.reserve(static_cast<size_t>(num_pcpus));
  for (int i = 0; i < num_pcpus; ++i) {
    pcpus_.push_back(std::make_unique<PCpu>(loop, id, i, costs));
  }
}

TimeNs Node::total_busy_time() const {
  TimeNs total = 0;
  for (const auto& p : pcpus_) {
    total += p->busy_time();
  }
  return total;
}

Cluster::Cluster(const Config& config) : costs_(config.costs) {
  FV_CHECK_GT(config.num_nodes, 0);
  if (config.threads >= 1) {
    // Host the cluster clock on the parallel engine. A single VM is one DSM
    // coherence domain, so everything lives in one partition and the fabric
    // runs in its (serial-compatible) single-loop mode — the schedule is the
    // exact serial schedule, so reports stay byte-identical at any --threads.
    ParallelEventLoop::Options opts;
    opts.num_partitions = 1;
    opts.num_threads = config.threads;
    opts.lookahead = 1;
    ploop_ = std::make_unique<ParallelEventLoop>(opts);
  }
  EventLoop* loop = ploop_ != nullptr ? ploop_->partition(0) : &loop_;
  fabric_ = std::make_unique<Fabric>(loop, config.num_nodes, config.link);
  rpc_ = std::make_unique<RpcLayer>(loop, fabric_.get(), config.rpc);
  nodes_.reserve(static_cast<size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(loop, i, config.pcpus_per_node, config.ram_per_node, &costs_));
  }
  for (auto& node : nodes_) {
    node->tenants().Init(config.ram_per_node, config.pcpus_per_node);
  }
}

}  // namespace fragvisor
