#include "src/host/lease_manager.h"

#include <utility>
#include <vector>

#include "src/sim/check.h"

namespace fragvisor {

const char* LeaseKindName(LeaseKind kind) {
  switch (kind) {
    case LeaseKind::kMemory: return "memory";
    case LeaseKind::kVcpu: return "vcpu";
    case LeaseKind::kIoBackend: return "io_backend";
  }
  return "?";
}

const char* LeaseEventName(LeaseEvent event) {
  switch (event) {
    case LeaseEvent::kExpired: return "expired";
    case LeaseEvent::kRevoked: return "revoked";
    case LeaseEvent::kReleased: return "released";
    case LeaseEvent::kLost: return "lost";
  }
  return "?";
}

LeaseManager::LeaseManager(RpcLayer* rpc, LeaseManagerConfig config)
    : rpc_(rpc), loop_(rpc->loop()), config_(config) {
  FV_CHECK_GT(config_.duration, 0);
  FV_CHECK_GT(config_.renew_interval, 0);
  FV_CHECK_LT(config_.renew_interval, config_.duration);
}

LeaseManager::LeaseManager(RpcLayer* rpc, NodeId home, LeaseManagerConfig config)
    : rpc_(rpc), loop_(rpc->fabric()->node_loop(home)), config_(config), home_(home) {
  FV_CHECK_GE(home, 0);
  // Home-pinned books live between an orchestrator's decisions with no
  // standing timers; renewal/expiry legs would also have to be rewritten as
  // round trips, which nothing needs yet.
  FV_CHECK(config_.manual_clock);
  FV_CHECK_GT(config_.duration, 0);
  FV_CHECK_GT(config_.renew_interval, 0);
  FV_CHECK_LT(config_.renew_interval, config_.duration);
}

LeaseId LeaseManager::Grant(NodeId lender, NodeId borrower, LeaseKind kind, uint64_t resource,
                            HandbackFn handback) {
  return Grant(lender, borrower, kind, resource, /*vm=*/0, std::move(handback));
}

LeaseId LeaseManager::Grant(NodeId lender, NodeId borrower, LeaseKind kind, uint64_t resource,
                            uint64_t vm, HandbackFn handback) {
  FV_CHECK_NE(lender, borrower);
  stats_.requested.Add(1);
  const LeaseId id = next_id_++;
  Lease& lease = leases_[id];
  lease.id = id;
  lease.lender = lender;
  lease.borrower = borrower;
  lease.kind = kind;
  lease.resource = resource;
  lease.vm = vm;
  lease.granted_at = loop_->now();
  handbacks_[id] = std::move(handback);

  RpcLayer::CallOpts opts;
  opts.token = id;
  opts.on_fail = [this, id]() { Terminate(id, LeaseEvent::kLost); };
  if (home_pinned()) {
    // Request leg home -> lender; the grant-ack leg lender -> home activates
    // the lease, so the book only mutates on home's partition. The failure
    // continuation of the request leg already runs at its source (home).
    rpc_->Call(home_, lender, MsgKind::kLease, config_.msg_bytes,
               [this, id, lender]() {
                 RpcLayer::CallOpts ack;
                 ack.token = id;
                 rpc_->Call(lender, home_, MsgKind::kLease, config_.msg_bytes,
                            [this, id]() { Activate(id); }, std::move(ack));
               },
               std::move(opts));
  } else {
    rpc_->Call(borrower, lender, MsgKind::kLease, config_.msg_bytes,
               [this, id]() { Activate(id); }, std::move(opts));
  }
  return id;
}

void LeaseManager::Activate(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end() || it->second.active) return;
  it->second.active = true;
  it->second.expires_at = loop_->now() + config_.duration;
  stats_.granted.Add(1);
  if (config_.manual_clock) return;
  ArmExpiry(id);
  if (config_.auto_renew) ArmRenewal(id);
}

void LeaseManager::ArmRenewal(LeaseId id) {
  loop_->ScheduleAfter(config_.renew_interval, [this, id]() {
    auto it = leases_.find(id);
    if (it == leases_.end() || !it->second.active) return;
    const Lease& lease = it->second;
    RpcLayer::CallOpts opts;
    opts.token = id;
    opts.on_fail = [this, id]() {
      stats_.renew_failures.Add(1);
      Terminate(id, LeaseEvent::kLost);
    };
    rpc_->Call(lease.borrower, lease.lender, MsgKind::kLease, config_.msg_bytes,
               [this, id]() {
                 auto renewed = leases_.find(id);
                 if (renewed == leases_.end() || !renewed->second.active) return;
                 renewed->second.expires_at = loop_->now() + config_.duration;
                 stats_.renewed.Add(1);
                 ArmRenewal(id);
               },
               std::move(opts));
  });
}

void LeaseManager::ArmExpiry(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end() || !it->second.active) return;
  const TimeNs expected = it->second.expires_at;
  loop_->ScheduleAt(expected, [this, id, expected]() {
    auto now_it = leases_.find(id);
    if (now_it == leases_.end() || !now_it->second.active) return;
    if (now_it->second.expires_at > expected) {
      // A renewal landed since this check was armed; chase the new deadline.
      ArmExpiry(id);
      return;
    }
    Terminate(id, LeaseEvent::kExpired);
  });
}

void LeaseManager::Revoke(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end() || !it->second.active) return;
  const Lease& lease = it->second;
  RpcLayer::CallOpts opts;
  opts.token = id;
  opts.on_fail = [this, id]() { Terminate(id, LeaseEvent::kLost); };
  if (home_pinned()) {
    // Revoke notice home -> borrower; the borrower's ack leg carries the
    // termination back to home's partition, where the handback runs.
    rpc_->Call(home_, lease.borrower, MsgKind::kLease, config_.msg_bytes,
               [this, id, borrower = lease.borrower]() {
                 RpcLayer::CallOpts ack;
                 ack.token = id;
                 rpc_->Call(borrower, home_, MsgKind::kLease, config_.msg_bytes,
                            [this, id]() { Terminate(id, LeaseEvent::kRevoked); },
                            std::move(ack));
               },
               std::move(opts));
  } else {
    rpc_->Call(lease.lender, lease.borrower, MsgKind::kLease, config_.msg_bytes,
               [this, id]() { Terminate(id, LeaseEvent::kRevoked); }, std::move(opts));
  }
}

void LeaseManager::Release(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end() || !it->second.active) return;
  const Lease& lease = it->second;
  // Lender-side bookkeeping only; fire and forget. Home-pinned books must
  // call Release from home's partition, so home is the legal source there.
  rpc_->Call(home_pinned() ? home_ : lease.borrower, lease.lender, MsgKind::kLease,
             config_.msg_bytes, []() {});
  Terminate(id, LeaseEvent::kReleased);
}

void LeaseManager::OnNodeFailure(NodeId node) {
  // Collect first: Terminate mutates the map and handbacks may grant anew.
  std::vector<std::pair<LeaseId, bool>> doomed;  // (id, lent_by_failed_node)
  for (const auto& [id, lease] : leases_) {
    if (lease.lender == node || lease.borrower == node) {
      doomed.emplace_back(id, lease.lender == node);
    }
  }
  for (const auto& [id, lost] : doomed) {
    if (lost) {
      Terminate(id, LeaseEvent::kLost);
    } else {
      // Dead borrower: the lender reclaims out-of-band during recovery; no
      // handback, the registered owner of the resource no longer exists.
      stats_.orphaned.Add(1);
      leases_.erase(id);
      handbacks_.erase(id);
    }
  }
}

void LeaseManager::Terminate(LeaseId id, LeaseEvent event) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return;
  Lease lease = it->second;
  HandbackFn handback;
  auto hb = handbacks_.find(id);
  if (hb != handbacks_.end()) handback = std::move(hb->second);
  leases_.erase(it);
  if (hb != handbacks_.end()) handbacks_.erase(hb);

  switch (event) {
    case LeaseEvent::kExpired: stats_.expired.Add(1); break;
    case LeaseEvent::kRevoked: stats_.revoked.Add(1); break;
    case LeaseEvent::kReleased: stats_.released.Add(1); break;
    case LeaseEvent::kLost: stats_.lost.Add(1); break;
  }
  if (event != LeaseEvent::kReleased) stats_.handbacks.Add(1);
  if (handback) handback(lease, event);
}

void LeaseManager::Drop(LeaseId id) {
  if (leases_.erase(id) > 0) stats_.dropped.Add(1);
  handbacks_.erase(id);
}

void LeaseManager::FailoverReset(NodeId new_home) {
  FV_CHECK(home_pinned());
  FV_CHECK(config_.manual_clock);
  FV_CHECK_GE(new_home, 0);
  stats_.failover_cleared.Add(static_cast<uint64_t>(leases_.size()));
  leases_.clear();
  handbacks_.clear();
  home_ = new_home;
  loop_ = rpc_->fabric()->node_loop(new_home);
}

void LeaseManager::RestoreActiveLease(const Lease& lease, HandbackFn handback) {
  FV_CHECK(config_.manual_clock);
  FV_CHECK(lease.active);
  FV_CHECK_NE(lease.id, kInvalidLease);
  FV_CHECK(leases_.find(lease.id) == leases_.end());
  stats_.restored.Add(1);
  leases_[lease.id] = lease;
  handbacks_[lease.id] = std::move(handback);
}

const Lease* LeaseManager::Find(LeaseId id) const {
  auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

int LeaseManager::ActiveLeases() const {
  int n = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.active) ++n;
  }
  return n;
}

std::vector<LeaseId> LeaseManager::ActiveLeasesByLender(NodeId lender, uint64_t vm) const {
  std::vector<LeaseId> out;
  for (const auto& [id, lease] : leases_) {
    if (lease.active && lease.lender == lender && lease.vm == vm) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<LeaseId> LeaseManager::ActiveLeasesOfVm(uint64_t vm) const {
  std::vector<LeaseId> out;
  for (const auto& [id, lease] : leases_) {
    if (lease.active && lease.vm == vm) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace fragvisor
