#include "src/host/health_monitor.h"

#include <algorithm>
#include <cmath>

#include "src/sim/check.h"

namespace fragvisor {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kFailed:
      return "failed";
    case NodeHealth::kSuspected:
      return "suspected";
    case NodeHealth::kSlow:
      return "slow";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(Cluster* cluster, const Config& config)
    : cluster_(cluster), config_(config) {
  FV_CHECK(cluster != nullptr);
  FV_CHECK_GT(config.degraded_error_threshold, 0);
  FV_CHECK_GT(config.miss_threshold, 0);
  FV_CHECK_GT(config.phi_window, 1);
  FV_CHECK_LT(config.suspect_phi, config.fail_phi);
  nodes_.resize(static_cast<size_t>(cluster->num_nodes()));
}

NodeHealth HealthMonitor::health(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  return nodes_[static_cast<size_t>(node)].health;
}

std::vector<NodeId> HealthMonitor::HealthyNodes() const {
  std::vector<NodeId> healthy;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    const NodeHealth h = nodes_[static_cast<size_t>(n)].health;
    if (h == NodeHealth::kHealthy || h == NodeHealth::kSuspected || h == NodeHealth::kSlow) {
      healthy.push_back(n);
    }
  }
  return healthy;
}

void HealthMonitor::SetHealth(NodeId node, NodeHealth health) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.health == health) {
    return;
  }
  st.health = health;
  // Snapshot before invoking: an observer may AddObserver (invalidating the
  // vector) or inject a failure that recursively re-enters SetHealth.
  const std::vector<ChangeHandler> snapshot = observers_;
  for (const ChangeHandler& observer : snapshot) {
    observer(node, health);
  }
}

void HealthMonitor::InjectCorrectableErrors(NodeId node, int count) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.health == NodeHealth::kFailed) {
    return;
  }
  st.correctable_errors += count;
  if (st.correctable_errors >= config_.degraded_error_threshold &&
      st.health != NodeHealth::kDegraded) {
    SetHealth(node, NodeHealth::kDegraded);
  }
}

void HealthMonitor::InjectFailure(NodeId node) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    return;
  }
  st.failed_injected = true;
  st.failed_at = cluster_->loop().now();
  if (!heartbeats_running_) {
    // No detector deployed: assume out-of-band notification.
    failures_detected_.Add(1);
    last_detection_latency_ = 0;
    detection_latency_hist_.Record(0.0);
    SetHealth(node, NodeHealth::kFailed);
  }
}

void HealthMonitor::StartHeartbeats(NodeId monitor_node) {
  FV_CHECK(!heartbeats_running_);
  FV_CHECK_GE(monitor_node, 0);
  FV_CHECK_LT(monitor_node, cluster_->num_nodes());
  heartbeats_running_ = true;
  monitor_node_ = monitor_node;
  // Typed endpoint: heartbeat datagrams carry the sender in the token, so one
  // handler at the monitor serves every node.
  cluster_->rpc().Bind(monitor_node, MsgKind::kControl, [this](const RpcLayer::Inbound& msg) {
    OnHeartbeat(static_cast<NodeId>(msg.token));
  });
  const TimeNs now = cluster_->loop().now();
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    nodes_[static_cast<size_t>(n)].last_heartbeat = now;
    SendHeartbeat(n);
  }
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
}

void HealthMonitor::OnHeartbeat(NodeId node) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    // A hard-failed node is permanently down; a heartbeat that was already in
    // flight when InjectFailure marked it must not refresh its liveness (nor
    // flip a detected failure back to kHealthy).
    return;
  }
  const TimeNs now = cluster_->loop().now();
  if (config_.detector == FailureDetector::kPhiAccrual) {
    const TimeNs gap = now - st.last_heartbeat;
    if (st.gaps.size() < static_cast<size_t>(config_.phi_window)) {
      st.gaps.push_back(gap);
    } else {
      st.gaps[st.gap_next] = gap;
      st.gap_next = (st.gap_next + 1) % st.gaps.size();
    }
    // "On time" tolerates scheduling slack of half an interval.
    if (gap <= config_.heartbeat_interval + config_.heartbeat_interval / 2) {
      ++st.on_time_streak;
    } else {
      st.on_time_streak = 0;
    }
  }
  st.last_heartbeat = now;
}

void HealthMonitor::SendHeartbeat(NodeId node) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    return;  // dead nodes fall silent (InjectFailure is permanent)
  }
  // Heartbeats are datagrams on purpose: their loss IS the failure signal,
  // so they must not ride the reliable channel's retransmits. A node the
  // fault plan has crashed falls silent here too (the fabric suppresses the
  // send), and resumes once the plan restarts it.
  cluster_->rpc().Datagram(node, monitor_node_, MsgKind::kControl, 64, nullptr,
                           /*receiver_delay=*/0, /*token=*/static_cast<uint64_t>(node));
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval,
                                 [this, node]() { SendHeartbeat(node); });
}

double PhiAccrualScore(const std::vector<TimeNs>& gaps, TimeNs expected_interval, TimeNs silence) {
  double mean = static_cast<double>(expected_interval);
  double var = 0.0;
  if (gaps.size() >= 2) {
    double sum = 0.0;
    for (const TimeNs g : gaps) {
      sum += static_cast<double>(g);
    }
    mean = sum / static_cast<double>(gaps.size());
    for (const TimeNs g : gaps) {
      const double d = static_cast<double>(g) - mean;
      var += d * d;
    }
    var /= static_cast<double>(gaps.size());
  }
  // Floor sigma so a perfectly regular history does not make the detector
  // hair-triggered (the Akka/Cassandra min-std-deviation guard).
  const double min_sigma = static_cast<double>(expected_interval) * 0.1;
  const double sigma = std::max(std::sqrt(var), min_sigma);
  // Normal tail probability of a gap at least this long.
  const double z = (static_cast<double>(silence) - mean) / sigma;
  const double p = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (p <= 1e-30) {
    return 30.0;
  }
  return -std::log10(p);
}

double HealthMonitor::PhiOfState(const NodeState& st, TimeNs now) const {
  return PhiAccrualScore(st.gaps, config_.heartbeat_interval, now - st.last_heartbeat);
}

double HealthMonitor::PhiOf(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  return PhiOfState(nodes_[static_cast<size_t>(node)], cluster_->loop().now());
}

bool HealthMonitor::DetectRecovery(NodeId n, NodeState& st) {
  // Heartbeats that resumed after the failure mark mean the node was
  // restarted (fault-plan crashes are revivable; InjectFailure is not).
  if (!st.failed_injected && st.last_heartbeat > st.failed_marked_at) {
    recoveries_detected_.Add(1);
    st.correctable_errors = 0;
    st.on_time_streak = 0;
    SetHealth(n, NodeHealth::kHealthy);
    return true;
  }
  return false;
}

void HealthMonitor::MarkFailed(NodeId n, NodeState& st, TimeNs now) {
  failures_detected_.Add(1);
  if (st.failed_injected) {
    last_detection_latency_ = now - st.failed_at;
  } else if (const FaultPlan* plan = cluster_->rpc().fault_plan();
             plan != nullptr && plan->LastCrashBefore(n, now) >= 0) {
    last_detection_latency_ = now - plan->LastCrashBefore(n, now);
  } else {
    last_detection_latency_ = 0;
  }
  detection_latency_hist_.Record(static_cast<double>(last_detection_latency_));
  st.failed_marked_at = now;
  SetHealth(n, NodeHealth::kFailed);
}

void HealthMonitor::CheckFixedMiss(NodeId n, NodeState& st, TimeNs now) {
  const TimeNs deadline =
      static_cast<TimeNs>(config_.miss_threshold) * config_.heartbeat_interval;
  if (st.health == NodeHealth::kFailed) {
    DetectRecovery(n, st);
    return;
  }
  if (now - st.last_heartbeat > deadline) {
    MarkFailed(n, st, now);
  }
}

void HealthMonitor::CheckPhiAccrual(NodeId n, NodeState& st, TimeNs now) {
  if (st.health == NodeHealth::kFailed) {
    DetectRecovery(n, st);
    return;
  }
  if (st.health == NodeHealth::kDegraded) {
    return;  // MCA degradation outranks the heartbeat view
  }
  // Warm-up: with next to no inter-arrival history the normal model is
  // meaningless (sigma collapses to the floor and one lost heartbeat scores
  // phi ~ 30). Until the window has a few samples, only an extended absolute
  // silence — far beyond any plausible loss streak — fails the node.
  const auto warmup = static_cast<size_t>(std::max(2, config_.phi_window / 8));
  if (st.gaps.size() < warmup) {
    const TimeNs warmup_deadline =
        3 * static_cast<TimeNs>(config_.miss_threshold) * config_.heartbeat_interval;
    if (now - st.last_heartbeat > warmup_deadline) {
      MarkFailed(n, st, now);
    }
    return;
  }
  const double phi = PhiOfState(st, now);
  if (phi >= config_.fail_phi) {
    MarkFailed(n, st, now);
    return;
  }
  if (phi >= config_.suspect_phi) {
    if (st.health != NodeHealth::kSuspected) {
      suspicions_raised_.Add(1);
      SetHealth(n, NodeHealth::kSuspected);
    }
    return;
  }
  // Below suspicion. Slow if the recent gap history is well above the send
  // cadence (lossy/jittery link or overloaded host), else heal with
  // hysteresis: only a streak of on-time beats clears a gray state.
  double window_mean = static_cast<double>(config_.heartbeat_interval);
  if (!st.gaps.empty()) {
    double sum = 0.0;
    for (const TimeNs g : st.gaps) {
      sum += static_cast<double>(g);
    }
    window_mean = sum / static_cast<double>(st.gaps.size());
  }
  const bool slow =
      window_mean > config_.slow_factor * static_cast<double>(config_.heartbeat_interval);
  if (slow) {
    if (st.health != NodeHealth::kSlow) {
      slow_marks_.Add(1);
      SetHealth(n, NodeHealth::kSlow);
    }
    return;
  }
  if ((st.health == NodeHealth::kSuspected || st.health == NodeHealth::kSlow) &&
      st.on_time_streak >= config_.recovery_streak) {
    SetHealth(n, NodeHealth::kHealthy);
  }
}

void HealthMonitor::CheckHeartbeats() {
  const TimeNs now = cluster_->loop().now();
  // A crashed monitor cannot observe anything; it picks back up on restart.
  if (!cluster_->rpc().NodeUp(monitor_node_)) {
    cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
    return;
  }
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    NodeState& st = nodes_[static_cast<size_t>(n)];
    if (n == monitor_node_) {
      continue;
    }
    if (config_.detector == FailureDetector::kPhiAccrual) {
      CheckPhiAccrual(n, st, now);
    } else {
      CheckFixedMiss(n, st, now);
    }
  }
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
}

}  // namespace fragvisor
