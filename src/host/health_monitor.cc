#include "src/host/health_monitor.h"

#include "src/sim/check.h"

namespace fragvisor {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(Cluster* cluster, const Config& config)
    : cluster_(cluster), config_(config) {
  FV_CHECK(cluster != nullptr);
  FV_CHECK_GT(config.degraded_error_threshold, 0);
  FV_CHECK_GT(config.miss_threshold, 0);
  nodes_.resize(static_cast<size_t>(cluster->num_nodes()));
}

NodeHealth HealthMonitor::health(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  return nodes_[static_cast<size_t>(node)].health;
}

std::vector<NodeId> HealthMonitor::HealthyNodes() const {
  std::vector<NodeId> healthy;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    if (nodes_[static_cast<size_t>(n)].health == NodeHealth::kHealthy) {
      healthy.push_back(n);
    }
  }
  return healthy;
}

void HealthMonitor::SetHealth(NodeId node, NodeHealth health) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.health == health) {
    return;
  }
  st.health = health;
  for (const ChangeHandler& observer : observers_) {
    observer(node, health);
  }
}

void HealthMonitor::InjectCorrectableErrors(NodeId node, int count) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.health == NodeHealth::kFailed) {
    return;
  }
  st.correctable_errors += count;
  if (st.correctable_errors >= config_.degraded_error_threshold &&
      st.health == NodeHealth::kHealthy) {
    SetHealth(node, NodeHealth::kDegraded);
  }
}

void HealthMonitor::InjectFailure(NodeId node) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    return;
  }
  st.failed_injected = true;
  st.failed_at = cluster_->loop().now();
  if (!heartbeats_running_) {
    // No detector deployed: assume out-of-band notification.
    failures_detected_.Add(1);
    last_detection_latency_ = 0;
    SetHealth(node, NodeHealth::kFailed);
  }
}

void HealthMonitor::StartHeartbeats(NodeId monitor_node) {
  FV_CHECK(!heartbeats_running_);
  FV_CHECK_GE(monitor_node, 0);
  FV_CHECK_LT(monitor_node, cluster_->num_nodes());
  heartbeats_running_ = true;
  monitor_node_ = monitor_node;
  // Typed endpoint: heartbeat datagrams carry the sender in the token, so one
  // handler at the monitor serves every node.
  cluster_->rpc().Bind(monitor_node, MsgKind::kControl, [this](const RpcLayer::Inbound& msg) {
    nodes_[static_cast<size_t>(msg.token)].last_heartbeat = cluster_->loop().now();
  });
  const TimeNs now = cluster_->loop().now();
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    nodes_[static_cast<size_t>(n)].last_heartbeat = now;
    SendHeartbeat(n);
  }
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
}

void HealthMonitor::SendHeartbeat(NodeId node) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    return;  // dead nodes fall silent (InjectFailure is permanent)
  }
  // Heartbeats are datagrams on purpose: their loss IS the failure signal,
  // so they must not ride the reliable channel's retransmits. A node the
  // fault plan has crashed falls silent here too (the fabric suppresses the
  // send), and resumes once the plan restarts it.
  cluster_->rpc().Datagram(node, monitor_node_, MsgKind::kControl, 64, nullptr,
                           /*receiver_delay=*/0, /*token=*/static_cast<uint64_t>(node));
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval,
                                 [this, node]() { SendHeartbeat(node); });
}

void HealthMonitor::CheckHeartbeats() {
  const TimeNs now = cluster_->loop().now();
  const TimeNs deadline =
      static_cast<TimeNs>(config_.miss_threshold) * config_.heartbeat_interval;
  // A crashed monitor cannot observe anything; it picks back up on restart.
  if (!cluster_->rpc().NodeUp(monitor_node_)) {
    cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
    return;
  }
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    NodeState& st = nodes_[static_cast<size_t>(n)];
    if (n == monitor_node_) {
      continue;
    }
    if (st.health == NodeHealth::kFailed) {
      // Heartbeats that resumed after the failure mark mean the node was
      // restarted (fault-plan crashes are revivable; InjectFailure is not).
      if (!st.failed_injected && st.last_heartbeat > st.failed_marked_at) {
        recoveries_detected_.Add(1);
        st.correctable_errors = 0;
        SetHealth(n, NodeHealth::kHealthy);
      }
      continue;
    }
    if (now - st.last_heartbeat > deadline) {
      failures_detected_.Add(1);
      if (st.failed_injected) {
        last_detection_latency_ = now - st.failed_at;
      } else if (const FaultPlan* plan = cluster_->rpc().fault_plan();
                 plan != nullptr && plan->LastCrashBefore(n, now) >= 0) {
        last_detection_latency_ = now - plan->LastCrashBefore(n, now);
      } else {
        last_detection_latency_ = 0;
      }
      st.failed_marked_at = now;
      SetHealth(n, NodeHealth::kFailed);
    }
  }
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
}

}  // namespace fragvisor
