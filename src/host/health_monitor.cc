#include "src/host/health_monitor.h"

#include "src/sim/check.h"

namespace fragvisor {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(Cluster* cluster, const Config& config)
    : cluster_(cluster), config_(config) {
  FV_CHECK(cluster != nullptr);
  FV_CHECK_GT(config.degraded_error_threshold, 0);
  FV_CHECK_GT(config.miss_threshold, 0);
  nodes_.resize(static_cast<size_t>(cluster->num_nodes()));
}

NodeHealth HealthMonitor::health(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  return nodes_[static_cast<size_t>(node)].health;
}

std::vector<NodeId> HealthMonitor::HealthyNodes() const {
  std::vector<NodeId> healthy;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    if (nodes_[static_cast<size_t>(n)].health == NodeHealth::kHealthy) {
      healthy.push_back(n);
    }
  }
  return healthy;
}

void HealthMonitor::SetHealth(NodeId node, NodeHealth health) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.health == health) {
    return;
  }
  st.health = health;
  for (const ChangeHandler& observer : observers_) {
    observer(node, health);
  }
}

void HealthMonitor::InjectCorrectableErrors(NodeId node, int count) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.health == NodeHealth::kFailed) {
    return;
  }
  st.correctable_errors += count;
  if (st.correctable_errors >= config_.degraded_error_threshold &&
      st.health == NodeHealth::kHealthy) {
    SetHealth(node, NodeHealth::kDegraded);
  }
}

void HealthMonitor::InjectFailure(NodeId node) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, cluster_->num_nodes());
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    return;
  }
  st.failed_injected = true;
  st.failed_at = cluster_->loop().now();
  if (!heartbeats_running_) {
    // No detector deployed: assume out-of-band notification.
    failures_detected_.Add(1);
    last_detection_latency_ = 0;
    SetHealth(node, NodeHealth::kFailed);
  }
}

void HealthMonitor::StartHeartbeats(NodeId monitor_node) {
  FV_CHECK(!heartbeats_running_);
  FV_CHECK_GE(monitor_node, 0);
  FV_CHECK_LT(monitor_node, cluster_->num_nodes());
  heartbeats_running_ = true;
  monitor_node_ = monitor_node;
  const TimeNs now = cluster_->loop().now();
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    nodes_[static_cast<size_t>(n)].last_heartbeat = now;
    SendHeartbeat(n);
  }
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
}

void HealthMonitor::SendHeartbeat(NodeId node) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  if (st.failed_injected) {
    return;  // dead nodes fall silent
  }
  cluster_->fabric().Send(node, monitor_node_, MsgKind::kControl, 64, [this, node]() {
    nodes_[static_cast<size_t>(node)].last_heartbeat = cluster_->loop().now();
  });
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval,
                                 [this, node]() { SendHeartbeat(node); });
}

void HealthMonitor::CheckHeartbeats() {
  const TimeNs now = cluster_->loop().now();
  const TimeNs deadline =
      static_cast<TimeNs>(config_.miss_threshold) * config_.heartbeat_interval;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    NodeState& st = nodes_[static_cast<size_t>(n)];
    if (st.health == NodeHealth::kFailed || n == monitor_node_) {
      continue;
    }
    if (now - st.last_heartbeat > deadline) {
      failures_detected_.Add(1);
      last_detection_latency_ = st.failed_injected ? now - st.failed_at : 0;
      SetHealth(n, NodeHealth::kFailed);
    }
  }
  cluster_->loop().ScheduleAfter(config_.heartbeat_interval, [this]() { CheckHeartbeats(); });
}

}  // namespace fragvisor
