// Physical CPU model with a round-robin timeslice scheduler.
//
// A PCpu owns a run queue of Schedulable tasks (vCPU threads, vhost workers).
// Resource overcommitment — the paper's baseline — is literally several vCPUs
// sharing one PCpu's run queue; an Aggregate VM pins one vCPU per PCpu across
// nodes.

#ifndef FRAGVISOR_SRC_HOST_PCPU_H_
#define FRAGVISOR_SRC_HOST_PCPU_H_

#include <deque>
#include <string>

#include "src/host/cost_model.h"
#include "src/net/fabric.h"
#include "src/sim/event_loop.h"
#include "src/sim/stats.h"

namespace fragvisor {

// A host thread that can be scheduled on a PCpu.
class Schedulable {
 public:
  enum class RunState {
    kRunnableAgain,  // used its budget, wants more CPU
    kBlocked,        // waiting on an external event; re-Enqueue() to resume
    kFinished,       // will never run again
  };

  struct RunResult {
    TimeNs used = 0;
    RunState state = RunState::kFinished;
  };

  virtual ~Schedulable() = default;

  // Executes up to `budget` of CPU time; returns how much was consumed and the
  // resulting state. Must not consume more than `budget`. Side effects that
  // should happen at the *end* of the consumed interval (e.g. emitting a DSM
  // request at the fault point) must be deferred to OnDescheduled(), which the
  // PCpu invokes once simulated time has advanced past the consumed interval.
  virtual RunResult RunFor(TimeNs budget) = 0;

  // Invoked at slice end (simulated time == slice start + used).
  virtual void OnDescheduled(RunState state) { (void)state; }

  // Consulted after OnDescheduled() when the state was kRunnableAgain; a task
  // can decline requeueing (e.g. a vCPU pausing for migration).
  virtual bool ShouldRequeue() const { return true; }

  virtual std::string name() const = 0;
};

class PCpu {
 public:
  PCpu(EventLoop* loop, NodeId node, int index, const CostModel* costs);

  PCpu(const PCpu&) = delete;
  PCpu& operator=(const PCpu&) = delete;

  NodeId node() const { return node_; }
  int index() const { return index_; }

  // Adds `task` to the tail of the run queue and starts dispatching if idle.
  void Enqueue(Schedulable* task);

  // Removes a queued (not currently running) task; returns false if absent.
  bool RemoveQueued(Schedulable* task);

  bool IsQueuedOrRunning(const Schedulable* task) const;

  // True when nothing is running or queued.
  bool idle() const { return current_ == nullptr && run_queue_.empty(); }

  Schedulable* current() const { return current_; }
  size_t queue_depth() const { return run_queue_.size(); }

  // Accumulated busy time (for utilization accounting).
  TimeNs busy_time() const { return busy_time_; }

 private:
  void DispatchNext();
  // Runs one micro-dispatch of current_ against the remaining slice budget.
  // Tasks may voluntarily yield mid-slice (to observe coherence events or to
  // allow preemption for migration); the same task continues its slice
  // without a context switch until the budget is exhausted.
  void RunCurrent(TimeNs switch_cost);

  EventLoop* loop_;
  NodeId node_;
  int index_;
  const CostModel* costs_;

  std::deque<Schedulable*> run_queue_;
  Schedulable* current_ = nullptr;
  Schedulable* last_ran_ = nullptr;  // to charge context switches on change
  TimeNs slice_remaining_ = 0;
  TimeNs busy_time_ = 0;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_PCPU_H_
