// Node health monitoring (Sec. 4, "Reliability").
//
// The resource-borrowing hypervisor cannot change hardware reliability, but
// it can exploit hardware monitoring/logging (Intel MCA/AER) to preemptively
// force-migrate VM slices off a likely-to-fail server, and detect outright
// failures via heartbeats so checkpoint/restart can recover.
//
// Benches and tests play the role of the platform firmware by injecting
// correctable-error bursts (-> kDegraded once past a threshold) and hard
// failures (-> kFailed, detected after missed heartbeats).

#ifndef FRAGVISOR_SRC_HOST_HEALTH_MONITOR_H_
#define FRAGVISOR_SRC_HOST_HEALTH_MONITOR_H_

#include <functional>
#include <vector>

#include "src/host/node.h"
#include "src/sim/event_loop.h"
#include "src/sim/stats.h"

namespace fragvisor {

enum class NodeHealth : uint8_t {
  kHealthy,
  kDegraded,  // correctable-error rate crossed the MCA threshold
  kFailed,    // stopped responding (heartbeat loss / fatal error)
};

const char* NodeHealthName(NodeHealth health);

class HealthMonitor {
 public:
  struct Config {
    // Correctable errors before a node is reported degraded.
    int degraded_error_threshold = 3;
    // Heartbeat settings (StartHeartbeats enables them).
    TimeNs heartbeat_interval = Millis(100);
    int miss_threshold = 3;
  };

  using ChangeHandler = std::function<void(NodeId node, NodeHealth health)>;

  HealthMonitor(Cluster* cluster, const Config& config);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Registers an observer; all observers are invoked on every transition
  // (the failover manager registers itself, logging/UIs can add more).
  void AddObserver(ChangeHandler handler) { observers_.push_back(std::move(handler)); }

  NodeHealth health(NodeId node) const;

  // Nodes currently usable for placement/evacuation.
  std::vector<NodeId> HealthyNodes() const;

  // --- Platform-event injection (the MCA/AER side) ---

  // Reports `count` correctable errors on `node`; crossing the threshold
  // flips the node to kDegraded and notifies.
  void InjectCorrectableErrors(NodeId node, int count);

  // Hard-fails `node`. With heartbeats running, detection (and notification)
  // happens after the configured misses; otherwise notification is
  // immediate.
  void InjectFailure(NodeId node);

  // --- Heartbeats ---

  // Every node sends periodic heartbeats to `monitor_node` over the fabric;
  // a checker marks nodes kFailed after miss_threshold silent intervals.
  void StartHeartbeats(NodeId monitor_node);

  bool heartbeats_running() const { return heartbeats_running_; }

  // Time from the failure (InjectFailure, or a FaultPlan crash) to detection,
  // for the most recent failure.
  TimeNs last_detection_latency() const { return last_detection_latency_; }
  uint64_t failures_detected() const { return failures_detected_.value(); }
  // Nodes that came back: a previously-failed node whose heartbeats resumed
  // (FaultPlan restarts; InjectFailure is permanent) flips back to kHealthy.
  uint64_t recoveries_detected() const { return recoveries_detected_.value(); }

 private:
  struct NodeState {
    NodeHealth health = NodeHealth::kHealthy;
    int correctable_errors = 0;
    bool failed_injected = false;
    TimeNs failed_at = 0;
    TimeNs failed_marked_at = 0;  // when the detector flipped us to kFailed
    TimeNs last_heartbeat = 0;
  };

  void SetHealth(NodeId node, NodeHealth health);
  void SendHeartbeat(NodeId node);
  void CheckHeartbeats();

  Cluster* cluster_;
  Config config_;
  std::vector<NodeState> nodes_;
  std::vector<ChangeHandler> observers_;
  bool heartbeats_running_ = false;
  NodeId monitor_node_ = kInvalidNode;
  TimeNs last_detection_latency_ = 0;
  Counter failures_detected_;
  Counter recoveries_detected_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_HEALTH_MONITOR_H_
