// Node health monitoring (Sec. 4, "Reliability").
//
// The resource-borrowing hypervisor cannot change hardware reliability, but
// it can exploit hardware monitoring/logging (Intel MCA/AER) to preemptively
// force-migrate VM slices off a likely-to-fail server, and detect outright
// failures via heartbeats so checkpoint/restart can recover.
//
// Two heartbeat detectors are available:
//
//  * kFixedMiss — the classic miss counter: a node is kFailed after
//    miss_threshold silent heartbeat intervals. Cheap, but any transient
//    jitter or partition longer than the deadline forges a full failover.
//  * kPhiAccrual — an adaptive detector over the heartbeat inter-arrival
//    history (Hayashibara et al.): the current silence is scored against a
//    normal model of the observed gaps, phi = -log10 P(a heartbeat still
//    arrives). Moderate phi marks the node kSuspected (gray failure: slow or
//    flaky, not provably dead); only extreme phi marks it kFailed. A window
//    mean well above the send interval marks the node kSlow. Both gray states
//    heal back to kHealthy after a streak of on-time heartbeats (hysteresis),
//    so jitter and short partitions never trigger restore-from-checkpoint.
//
// Benches and tests play the role of the platform firmware by injecting
// correctable-error bursts (-> kDegraded once past a threshold) and hard
// failures (-> kFailed, detected after missed heartbeats).

#ifndef FRAGVISOR_SRC_HOST_HEALTH_MONITOR_H_
#define FRAGVISOR_SRC_HOST_HEALTH_MONITOR_H_

#include <functional>
#include <vector>

#include "src/host/node.h"
#include "src/sim/event_loop.h"
#include "src/sim/stats.h"

namespace fragvisor {

enum class NodeHealth : uint8_t {
  kHealthy,
  kDegraded,   // correctable-error rate crossed the MCA threshold
  kFailed,     // stopped responding (heartbeat loss / fatal error)
  kSuspected,  // phi detector: likely failed, not yet past the fail threshold
  kSlow,       // alive but heartbeat gaps well above the send interval
};

const char* NodeHealthName(NodeHealth health);

// Which heartbeat failure detector CheckHeartbeats runs.
enum class FailureDetector : uint8_t { kFixedMiss, kPhiAccrual };

// Phi-accrual score of a heartbeat silence against an inter-arrival window
// (Hayashibara et al.): phi = -log10 P(a heartbeat still arrives), under a
// normal model of the observed gaps. With fewer than two samples the mean
// falls back to the nominal send interval; sigma is floored at a tenth of
// that interval (the Akka/Cassandra min-std-deviation guard) so a perfectly
// regular history does not make the detector hair-triggered. Capped at 30.
double PhiAccrualScore(const std::vector<TimeNs>& gaps, TimeNs expected_interval, TimeNs silence);

// Standalone phi-accrual estimator over one peer's heartbeat stream — the
// same math HealthMonitor applies per node, packaged for callers that manage
// their own heartbeat transport (e.g. the cluster marketplace's orchestrator
// failover monitor). Observe() on every arrival, Phi(now) to score the
// current silence. Deterministic: pure state machine, no clock of its own.
class PhiAccrualEstimator {
 public:
  PhiAccrualEstimator() = default;
  PhiAccrualEstimator(TimeNs expected_interval, int window)
      : interval_(expected_interval), window_(window < 1 ? 1 : static_cast<size_t>(window)) {}

  // Forgets all history and anchors the silence clock at `now`.
  void Reset(TimeNs now) {
    gaps_.clear();
    next_ = 0;
    last_ = now;
  }

  void Observe(TimeNs now) {
    if (last_ >= 0) {
      const TimeNs gap = now - last_;
      if (gaps_.size() < window_) {
        gaps_.push_back(gap);
      } else {
        gaps_[next_] = gap;
        next_ = (next_ + 1) % gaps_.size();
      }
    }
    last_ = now;
  }

  // 0 before the first Observe/Reset anchor.
  double Phi(TimeNs now) const {
    if (last_ < 0) return 0.0;
    return PhiAccrualScore(gaps_, interval_, now - last_);
  }

  int samples() const { return static_cast<int>(gaps_.size()); }
  TimeNs last_heartbeat() const { return last_; }

 private:
  TimeNs interval_ = Millis(100);
  size_t window_ = 32;
  TimeNs last_ = -1;  // no anchor yet
  std::vector<TimeNs> gaps_;
  size_t next_ = 0;
};

class HealthMonitor {
 public:
  struct Config {
    // Correctable errors before a node is reported degraded.
    int degraded_error_threshold = 3;
    // Heartbeat settings (StartHeartbeats enables them).
    TimeNs heartbeat_interval = Millis(100);
    int miss_threshold = 3;

    // --- Phi-accrual detector (detector == kPhiAccrual only) ---
    FailureDetector detector = FailureDetector::kFixedMiss;
    double suspect_phi = 2.0;  // phi >= this -> kSuspected
    double fail_phi = 10.0;    // phi >= this -> kFailed
    int phi_window = 32;       // inter-arrival samples kept per node
    // Window mean > slow_factor * heartbeat_interval -> kSlow.
    double slow_factor = 2.0;
    // On-time heartbeats in a row before kSuspected/kSlow heal to kHealthy.
    int recovery_streak = 3;
  };

  using ChangeHandler = std::function<void(NodeId node, NodeHealth health)>;

  HealthMonitor(Cluster* cluster, const Config& config);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Registers an observer; all observers are invoked on every transition
  // (the failover manager registers itself, logging/UIs can add more).
  void AddObserver(ChangeHandler handler) { observers_.push_back(std::move(handler)); }

  NodeHealth health(NodeId node) const;

  // Nodes currently usable for placement/evacuation. kSuspected/kSlow nodes
  // still count — gray states must not shrink the placement pool, or a false
  // suspicion would cascade into migrations.
  std::vector<NodeId> HealthyNodes() const;

  // --- Platform-event injection (the MCA/AER side) ---

  // Reports `count` correctable errors on `node`; crossing the threshold
  // flips the node to kDegraded and notifies.
  void InjectCorrectableErrors(NodeId node, int count);

  // Hard-fails `node`. With heartbeats running, detection (and notification)
  // happens after the configured misses; otherwise notification is
  // immediate.
  void InjectFailure(NodeId node);

  // --- Heartbeats ---

  // Every node sends periodic heartbeats to `monitor_node` over the fabric;
  // a checker marks nodes kFailed per the configured detector.
  void StartHeartbeats(NodeId monitor_node);

  bool heartbeats_running() const { return heartbeats_running_; }

  // Current phi score of `node` (kPhiAccrual only; 0 before any history).
  double PhiOf(NodeId node) const;

  // Time from the failure (InjectFailure, or a FaultPlan crash) to detection,
  // for the most recent failure.
  TimeNs last_detection_latency() const { return last_detection_latency_; }
  uint64_t failures_detected() const { return failures_detected_.value(); }
  // Nodes that came back: a previously-failed node whose heartbeats resumed
  // (FaultPlan restarts; InjectFailure is permanent) flips back to kHealthy.
  uint64_t recoveries_detected() const { return recoveries_detected_.value(); }
  // Gray-failure bookkeeping (kPhiAccrual only).
  uint64_t suspicions_raised() const { return suspicions_raised_.value(); }
  uint64_t slow_marks() const { return slow_marks_.value(); }
  // Every detection latency, for percentile reports.
  const Histogram& detection_latency_hist() const { return detection_latency_hist_; }

 private:
  struct NodeState {
    NodeHealth health = NodeHealth::kHealthy;
    int correctable_errors = 0;
    bool failed_injected = false;
    TimeNs failed_at = 0;
    TimeNs failed_marked_at = 0;  // when the detector flipped us to kFailed
    TimeNs last_heartbeat = 0;
    // Phi-accrual inter-arrival window (ring buffer of the last gaps).
    std::vector<TimeNs> gaps;
    size_t gap_next = 0;
    int on_time_streak = 0;
  };

  void SetHealth(NodeId node, NodeHealth health);
  void SendHeartbeat(NodeId node);
  void OnHeartbeat(NodeId node);
  void CheckHeartbeats();
  void CheckFixedMiss(NodeId n, NodeState& st, TimeNs now);
  void CheckPhiAccrual(NodeId n, NodeState& st, TimeNs now);
  // True if a failed node's heartbeats resumed (FaultPlan restart).
  bool DetectRecovery(NodeId n, NodeState& st);
  void MarkFailed(NodeId n, NodeState& st, TimeNs now);
  double PhiOfState(const NodeState& st, TimeNs now) const;

  Cluster* cluster_;
  Config config_;
  std::vector<NodeState> nodes_;
  std::vector<ChangeHandler> observers_;
  bool heartbeats_running_ = false;
  NodeId monitor_node_ = kInvalidNode;
  TimeNs last_detection_latency_ = 0;
  Counter failures_detected_;
  Counter recoveries_detected_;
  Counter suspicions_raised_;
  Counter slow_marks_;
  Histogram detection_latency_hist_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_HEALTH_MONITOR_H_
