// Time-bounded leases over borrowed resources (Sec. 3 "borrow them from
// other nodes" — hardened).
//
// Every resource an Aggregate VM borrows from a remote slice — memory the
// lender hosts, a vCPU slot on its pCPUs, a delegated I/O backend — is
// covered by a lease the borrower must keep renewing over the fabric's
// latency class. The lease is the contract that makes borrowing safe to
// undo: when a lender wants its resources back it revokes, when the
// borrower stops renewing (crashed, partitioned) the lender reclaims at
// expiry, and when the lender dies the failed renewal tells the borrower
// the resource is gone. In all three cases the registered handback runs so
// the VM hands the resource back (or re-homes it) in an orderly fashion
// instead of wedging on a dead peer.
//
// The manager is generic: it tracks (lender, borrower, kind, resource_id)
// tuples and drives the renew/expire/revoke state machine; what a resource
// *is* and how it is handed back is the caller's business, expressed in the
// HandbackFn. Nothing here touches VM state, so the class lives in
// src/host/ below fv_core.
//
// Determinism: lease traffic uses MsgKind::kLease over the default QoS
// pass-through; a run without a LeaseManager attached sends no lease
// messages, so golden traces of existing configurations are unchanged.

#ifndef FRAGVISOR_SRC_HOST_LEASE_MANAGER_H_
#define FRAGVISOR_SRC_HOST_LEASE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/rpc.h"
#include "src/sim/event_loop.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fragvisor {

enum class LeaseKind : uint8_t {
  kMemory = 0,    // borrowed DSM-backed memory hosted by the lender
  kVcpu = 1,      // a vCPU slot on the lender's pCPUs
  kIoBackend = 2, // a delegated virtio/accel backend on the lender
};

const char* LeaseKindName(LeaseKind kind);

// Why a lease stopped being held.
enum class LeaseEvent : uint8_t {
  kExpired = 0,   // borrower stopped renewing; lender reclaimed at expiry
  kRevoked = 1,   // lender asked for the resource back
  kReleased = 2,  // borrower returned it voluntarily
  kLost = 3,      // lender unreachable/dead; the resource is gone
};

const char* LeaseEventName(LeaseEvent event);

using LeaseId = uint64_t;
inline constexpr LeaseId kInvalidLease = 0;

struct Lease {
  LeaseId id = kInvalidLease;
  NodeId lender = kInvalidNode;
  NodeId borrower = kInvalidNode;
  LeaseKind kind = LeaseKind::kMemory;
  uint64_t resource = 0;       // caller-defined: vCPU index, device slot, ...
  uint64_t vm = 0;             // borrowing VM id (multi-tenant); 0 = untagged
  TimeNs granted_at = 0;
  TimeNs expires_at = 0;
  bool active = false;         // grant acked and not yet terminated
};

struct LeaseManagerConfig {
  TimeNs duration = Millis(200);       // validity window per grant/renewal
  TimeNs renew_interval = Millis(80);  // borrower re-ups this often
  bool auto_renew = true;              // off: leases run to expiry
  uint64_t msg_bytes = 128;            // grant/renew/revoke wire size
  // No renewal or expiry timers at all: leases live until an explicit
  // Revoke/Release/OnNodeFailure. A cluster orchestrator that arbitrates
  // reclamation itself wants exactly this — between its epochs every event
  // queue drains, which standing timers would prevent.
  bool manual_clock = false;
};

struct LeaseStats {
  Counter granted;
  Counter renewed;
  Counter expired;
  Counter revoked;
  Counter released;
  Counter renew_failures;  // renewals the reliable fabric gave up on
  Counter handbacks;       // involuntary handbacks (expired/revoked/lost)

  // Book-entry conservation counters. Every entry enters the book via a
  // Grant call (`requested`) or RestoreActiveLease (`restored`) and leaves
  // it via exactly one of expired/revoked/released/lost/dropped/orphaned/
  // failover_cleared — so at any drained point:
  //   requested + restored == expired + revoked + released + lost + dropped
  //                           + orphaned + failover_cleared + (entries left)
  // which is the invariant a cluster-level chaos checker asserts.
  Counter requested;         // Grant calls (activated or not)
  Counter lost;              // terminated kLost (dead/unreachable lender)
  Counter dropped;           // Drop(): owner tore the entry down silently
  Counter orphaned;          // OnNodeFailure retired a dead borrower's lease
  Counter restored;          // RestoreActiveLease reinstatements
  Counter failover_cleared;  // entries wiped by FailoverReset (book died)
};

class LeaseManager {
 public:
  // Runs when a lease terminates involuntarily (kExpired/kRevoked/kLost) —
  // the resource must be handed back or re-homed — and, for symmetry, after
  // a voluntary Release (kReleased) so callers can centralize cleanup.
  using HandbackFn = std::function<void(const Lease&, LeaseEvent)>;

  LeaseManager(RpcLayer* rpc, LeaseManagerConfig config = LeaseManagerConfig());

  // Home-pinned mode, for a cluster orchestrator resident on node `home`:
  // every protocol exchange is a round trip `home` -> counterparty ->
  // `home`, and the lease book only mutates in the home-bound leg. On a
  // parallel-core fabric a delivery continuation runs on the destination's
  // partition, so this routing pins the whole book to home's partition while
  // the wire traffic still crosses to the real lender/borrower. Requires
  // config.manual_clock (the orchestrator drives reclamation itself; no
  // standing renewal/expiry timers), and Grant/Revoke/Release must be called
  // from home's partition.
  LeaseManager(RpcLayer* rpc, NodeId home, LeaseManagerConfig config = LeaseManagerConfig());

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  // Asks `lender` to lease `resource` of `kind` to `borrower`. Returns the
  // lease id immediately; the lease turns active when the lender's ack
  // arrives, after which renewals are scheduled automatically. If the grant
  // itself fails (lender dead), `handback` runs with kLost.
  LeaseId Grant(NodeId lender, NodeId borrower, LeaseKind kind, uint64_t resource,
                HandbackFn handback);

  // As above, tagging the lease with the borrowing VM's id so per-tenant
  // reclamation can find exactly the leases it may touch.
  LeaseId Grant(NodeId lender, NodeId borrower, LeaseKind kind, uint64_t resource, uint64_t vm,
                HandbackFn handback);

  // Lender-initiated: asks the borrower to give the resource back. The
  // handback runs with kRevoked once the borrower is notified (kLost if the
  // notification cannot be delivered).
  void Revoke(LeaseId id);

  // Borrower-initiated: returns the resource voluntarily, notifying the
  // lender. The handback runs with kReleased.
  void Release(LeaseId id);

  // Tears down every lease touching `node`. Leases it lent are lost (the
  // resource died with it — handback kLost fires so borrowers re-home);
  // leases it held as borrower are silently retired (failure recovery
  // repatriates those resources out-of-band).
  void OnNodeFailure(NodeId node);

  const Lease* Find(LeaseId id) const;
  int ActiveLeases() const;

  // Active leases lent by `lender` to VM `vm` — the set a per-tenant
  // reclamation (call memory home from tenant A to admit tenant B) may
  // revoke, and nothing else. Ordered by lease id (deterministic).
  std::vector<LeaseId> ActiveLeasesByLender(NodeId lender, uint64_t vm) const;

  // Every active lease tagged with `vm`, ordered by lease id.
  std::vector<LeaseId> ActiveLeasesOfVm(uint64_t vm) const;

  const LeaseManagerConfig& config() const { return config_; }
  const LeaseStats& stats() const { return stats_; }

  // --- Snapshot support (manual-clock books only) ---
  //
  // An orchestrator that snapshots at drained quiesce points serializes its
  // lease book itself (it knows every lease it granted); these hooks let it
  // reinstate the book on load without any protocol traffic. Restoring is
  // only coherent when no timers would need re-arming, hence manual_clock.

  // Reinstates an already-active lease verbatim, including its id.
  void RestoreActiveLease(const Lease& lease, HandbackFn handback);

  // Withdraws a lease from the book without protocol traffic or handback —
  // for owners tearing down the borrower that no longer care about the
  // grant's fate (e.g. a VM departing before its grant ack returned).
  void Drop(LeaseId id);

  // Orchestrator failover (home-pinned books only): the node hosting the
  // book died and a successor is rebuilding it from its journal plus
  // per-node interrogation. Wipes every entry (counted as failover_cleared —
  // the old book died with its home; surviving leases are reinstated with
  // fresh ids via RestoreActiveLease) and re-homes the manager so all future
  // protocol legs round-trip through `new_home`'s partition. In-flight
  // continuations of the old home hold ids no longer in the book and no-op.
  void FailoverReset(NodeId new_home);
  NodeId home() const { return home_; }
  LeaseId next_id() const { return next_id_; }
  void RestoreNextId(LeaseId id) { next_id_ = id; }
  LeaseStats* mutable_stats() { return &stats_; }

 private:
  void ArmRenewal(LeaseId id);
  void ArmExpiry(LeaseId id);
  void Activate(LeaseId id);
  void Terminate(LeaseId id, LeaseEvent event);

  bool home_pinned() const { return home_ != kInvalidNode; }

  RpcLayer* rpc_;
  EventLoop* loop_;
  LeaseManagerConfig config_;
  NodeId home_ = kInvalidNode;  // home-pinned mode when valid
  LeaseId next_id_ = 1;
  std::map<LeaseId, Lease> leases_;
  std::map<LeaseId, HandbackFn> handbacks_;
  LeaseStats stats_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_HOST_LEASE_MANAGER_H_
