#include "src/mem/dsm.h"

#include <memory>
#include <utility>

#include "src/sim/check.h"

namespace fragvisor {
namespace {

// Protocol message sizes on the wire.
constexpr uint64_t kMsgHeaderBytes = 64;
constexpr uint64_t kPageDataBytes = 4096 + kMsgHeaderBytes;
constexpr uint64_t kPteDeltaBytes = 256;  // piggybacked page-table delta

}  // namespace

const char* PageClassName(PageClass cls) {
  switch (cls) {
    case PageClass::kGuestPrivate:
      return "guest_private";
    case PageClass::kKernelShared:
      return "kernel_shared";
    case PageClass::kPageTable:
      return "page_table";
    case PageClass::kIoRing:
      return "io_ring";
    case PageClass::kReadMostly:
      return "read_mostly";
    case PageClass::kCount:
      break;
  }
  return "unknown";
}

DsmEngine::DsmEngine(EventLoop* loop, Fabric* fabric, const CostModel* costs,
                     const Options& options)
    : loop_(loop), fabric_(fabric), costs_(costs), options_(options) {
  FV_CHECK(loop != nullptr);
  FV_CHECK(fabric != nullptr);
  FV_CHECK(costs != nullptr);
  FV_CHECK_GT(options.num_nodes, 0);
  FV_CHECK_LE(options.num_nodes, 32);
  FV_CHECK_GE(options.home, 0);
  FV_CHECK_LT(options.home, options.num_nodes);
  resident_.resize(static_cast<size_t>(options.num_nodes));
  node_faults_.resize(static_cast<size_t>(options.num_nodes));
}

void DsmEngine::SeedRange(PageNum start, uint64_t count, NodeId owner) {
  FV_CHECK_GE(owner, 0);
  FV_CHECK_LT(owner, options_.num_nodes);
  for (PageNum p = start; p < start + count; ++p) {
    PageState& st = pages_[p];
    FV_CHECK(!st.busy);
    st.owner = owner;
    st.sharer_mask = Bit(owner);
    resident_[static_cast<size_t>(owner)][p] = PageAccess::kWrite;
    // Clear any stale residency on other nodes (re-seeding in tests).
    for (int n = 0; n < options_.num_nodes; ++n) {
      if (n != owner) {
        resident_[static_cast<size_t>(n)].erase(p);
      }
    }
  }
}

void DsmEngine::SetPageClass(PageNum start, uint64_t count, PageClass cls) {
  FV_CHECK_GT(count, 0u);
  class_ranges_[start] = {start + count, cls};
}

PageClass DsmEngine::ClassOf(PageNum page) const {
  auto it = class_ranges_.upper_bound(page);
  if (it == class_ranges_.begin()) {
    return PageClass::kGuestPrivate;
  }
  --it;
  if (page < it->second.first) {
    return it->second.second;
  }
  return PageClass::kGuestPrivate;
}

DsmEngine::PageState& DsmEngine::EnsurePage(PageNum page) {
  auto [it, inserted] = pages_.try_emplace(page);
  if (inserted) {
    // First touch anywhere: the origin backs the boot image and all fresh
    // anonymous memory, exactly like Popcorn's origin node.
    it->second.owner = options_.home;
    it->second.sharer_mask = Bit(options_.home);
    resident_[static_cast<size_t>(options_.home)][page] = PageAccess::kWrite;
  }
  return it->second;
}

PageAccess& DsmEngine::ResidentSlot(NodeId node, PageNum page) {
  return resident_[static_cast<size_t>(node)][page];
}

PageAccess DsmEngine::ResidentAccess(NodeId node, PageNum page) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  const auto& m = resident_[static_cast<size_t>(node)];
  auto it = m.find(page);
  return it == m.end() ? PageAccess::kNone : it->second;
}

NodeId DsmEngine::OwnerOf(PageNum page) const {
  auto it = pages_.find(page);
  return it == pages_.end() ? kInvalidNode : it->second.owner;
}

std::vector<PageNum> DsmEngine::PagesOwnedBy(NodeId node) const {
  std::vector<PageNum> out;
  for (const auto& [page, st] : pages_) {
    if (st.owner == node) {
      out.push_back(page);
    }
  }
  return out;
}

uint64_t DsmEngine::ReseedOwnedBy(NodeId from, NodeId to) {
  FV_CHECK_GE(to, 0);
  FV_CHECK_LT(to, options_.num_nodes);
  uint64_t moved = 0;
  for (auto& [page, st] : pages_) {
    if (st.owner != from || st.busy) {
      continue;
    }
    st.owner = to;
    st.sharer_mask = Bit(to);
    st.hold_until = 0;
    for (int n = 0; n < options_.num_nodes; ++n) {
      if (n != to) {
        resident_[static_cast<size_t>(n)].erase(page);
      }
    }
    resident_[static_cast<size_t>(to)][page] = PageAccess::kWrite;
    ++moved;
  }
  return moved;
}

uint64_t DsmEngine::FaultsByNode(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  return node_faults_[static_cast<size_t>(node)].value();
}

uint64_t DsmEngine::ResidentPageCount(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  uint64_t count = 0;
  for (const auto& [page, acc] : resident_[static_cast<size_t>(node)]) {
    (void)page;
    if (acc != PageAccess::kNone) {
      ++count;
    }
  }
  return count;
}

void DsmEngine::MigrateOwnedPages(NodeId from, NodeId to,
                                  std::function<void(uint64_t moved)> done) {
  FV_CHECK_GE(to, 0);
  FV_CHECK_LT(to, options_.num_nodes);
  FV_CHECK_NE(from, to);
  FV_CHECK(done != nullptr);
  // Snapshot the candidate set now; pages that become busy before their
  // batch ships stay behind (demand paging will move them later).
  auto candidates = std::make_shared<std::vector<PageNum>>(PagesOwnedBy(from));
  auto moved = std::make_shared<uint64_t>(0);
  constexpr size_t kBatchPages = 256;  // 1 MiB wire batches

  auto ship_batch = std::make_shared<std::function<void(size_t)>>();
  *ship_batch = [this, from, to, candidates, moved, ship_batch,
                 done = std::move(done)](size_t start) mutable {
    if (start >= candidates->size()) {
      done(*moved);
      return;
    }
    const size_t end = std::min(start + kBatchPages, candidates->size());
    // Claim eligible pages for this batch: still owned by `from`, idle.
    auto batch = std::make_shared<std::vector<PageNum>>();
    for (size_t i = start; i < end; ++i) {
      const PageNum page = (*candidates)[i];
      auto it = pages_.find(page);
      if (it == pages_.end() || it->second.busy || it->second.owner != from) {
        continue;
      }
      // Mark busy so racing faults queue behind the migration.
      it->second.busy = true;
      batch->push_back(page);
    }
    if (batch->empty()) {
      loop_->ScheduleAfter(0, [ship_batch, end]() { (*ship_batch)(end); });
      return;
    }
    const uint64_t bytes = 4096 * batch->size() + 256;
    SendProto(from, to, MsgKind::kDsmPageData, bytes,
              [this, to, batch, moved, ship_batch, end]() {
                for (const PageNum page : *batch) {
                  PageState& st = pages_[page];
                  st.owner = to;
                  st.sharer_mask = Bit(to);
                  st.hold_until = 0;
                  for (int n = 0; n < options_.num_nodes; ++n) {
                    if (n != to) {
                      resident_[static_cast<size_t>(n)].erase(page);
                    }
                  }
                  resident_[static_cast<size_t>(to)][page] = PageAccess::kWrite;
                  st.busy = false;
                  // Wake any fault that queued while the batch was in flight.
                  if (!st.waiters.empty()) {
                    Transaction next = std::move(st.waiters.front());
                    st.waiters.pop_front();
                    st.busy = true;
                    loop_->ScheduleAfter(0, [this, page, next = std::move(next)]() mutable {
                      ExecuteTransaction(page, std::move(next));
                    });
                  }
                }
                *moved += batch->size();
                (*ship_batch)(end);
              });
  };
  (*ship_batch)(0);
}

bool DsmEngine::WouldHit(NodeId node, PageNum page, bool is_write) const {
  const PageAccess acc = ResidentAccess(node, page);
  if (is_write) {
    return acc == PageAccess::kWrite;
  }
  return acc != PageAccess::kNone;
}

TimeNs DsmEngine::HandlerCost() const {
  TimeNs cost = costs_->dsm_handler;
  if (options_.userspace_dsm) {
    cost += costs_->dsm_userspace_extra;
  }
  return cost;
}

void DsmEngine::SendProto(NodeId src, NodeId dst, MsgKind kind, uint64_t bytes,
                          std::function<void()> cb) {
  stats_.protocol_messages.Add(1);
  stats_.protocol_bytes.Add(bytes);
  fabric_->Send(src, dst, kind, bytes, [this, cb = std::move(cb)]() mutable {
    loop_->ScheduleAfter(HandlerCost(), std::move(cb));
  });
}

bool DsmEngine::Access(NodeId node, PageNum page, bool is_write, std::function<void()> done) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  EnsurePage(page);
  if (WouldHit(node, page, is_write)) {
    return true;
  }

  const PageClass cls = ClassOf(page);
  if (is_write) {
    stats_.write_faults.Add(1);
  } else {
    stats_.read_faults.Add(1);
  }
  stats_.faults_by_class[static_cast<size_t>(cls)].Add(1);
  node_faults_[static_cast<size_t>(node)].Add(1);

  Transaction txn;
  txn.requester = node;
  txn.is_write = is_write;
  txn.start_time = loop_->now();
  txn.done = std::move(done);
  loop_->Trace(TraceCategory::kDsm, is_write ? "write_fault" : "read_fault",
               "node=" + std::to_string(node) + " page=" + std::to_string(page) + " class=" +
                   PageClassName(cls));

  // Requester side: VM exit, fault decode, request dispatch.
  const TimeNs local = costs_->ept_fault_vmexit + HandlerCost();
  const MsgKind kind = is_write ? MsgKind::kDsmWriteReq : MsgKind::kDsmReadReq;
  loop_->ScheduleAfter(local, [this, node, page, kind, txn = std::move(txn)]() mutable {
    SendProto(node, options_.home, kind, kMsgHeaderBytes,
              [this, page, txn = std::move(txn)]() mutable {
                StartTransaction(page, std::move(txn));
              });
  });
  return false;
}

void DsmEngine::StartTransaction(PageNum page, Transaction txn) {
  PageState& st = pages_[page];
  if (st.busy) {
    st.waiters.push_back(std::move(txn));
    return;
  }
  st.busy = true;
  ExecuteTransaction(page, std::move(txn));
}

void DsmEngine::ExecuteTransaction(PageNum page, Transaction txn) {
  // The access may have been satisfied while this transaction queued (another
  // vCPU on the same node faulted first).
  if (WouldHit(txn.requester, page, txn.is_write)) {
    CompleteFault(page, txn);
    FinishTransaction(page);
    return;
  }
  // Anti-ping-pong hold: let a freshly granted owner make progress before a
  // competitor takes the page away. The directory entry stays busy.
  PageState& st = pages_[page];
  if (txn.requester != st.owner && loop_->now() < st.hold_until) {
    loop_->ScheduleAt(st.hold_until, [this, page, txn = std::move(txn)]() mutable {
      ExecuteTransaction(page, std::move(txn));
    });
    return;
  }
  if (!txn.is_write) {
    RunReadProtocol(page, std::move(txn));
    return;
  }
  if (options_.contextual_dsm && ClassOf(page) == PageClass::kPageTable) {
    RunPageTablePiggyback(page, std::move(txn));
    return;
  }
  RunWriteProtocol(page, std::move(txn));
}

void DsmEngine::FinishTransaction(PageNum page) {
  PageState& st = pages_[page];
  FV_CHECK(st.busy);
  if (st.waiters.empty()) {
    st.busy = false;
    return;
  }
  Transaction next = std::move(st.waiters.front());
  st.waiters.pop_front();
  // Dispatch asynchronously to bound stack depth under heavy contention.
  loop_->ScheduleAfter(0, [this, page, next = std::move(next)]() mutable {
    ExecuteTransaction(page, std::move(next));
  });
}

void DsmEngine::CompleteFault(PageNum page, const Transaction& txn) {
  loop_->Trace(TraceCategory::kDsm, "fault_resolved",
               "node=" + std::to_string(txn.requester) + " page=" + std::to_string(page) +
                   " latency_us=" + std::to_string(ToMicros(loop_->now() - txn.start_time)));
  stats_.fault_latency_ns.Record(static_cast<double>(loop_->now() - txn.start_time));
  if (txn.done) {
    txn.done();
  }
}

void DsmEngine::RunReadProtocol(PageNum page, Transaction txn) {
  PageState& st = pages_[page];
  const NodeId requester = txn.requester;
  const NodeId owner = st.owner;
  FV_CHECK_NE(owner, kInvalidNode);
  FV_CHECK_NE(owner, requester);  // owner always holds >= read; would have hit

  stats_.page_transfers.Add(1);

  // Sequential read prefetch: ship idle same-owner follower pages on the
  // same reply. Selected now; granted together with the main page.
  std::vector<PageNum> prefetch;
  for (int k = 1; k <= options_.read_prefetch_pages; ++k) {
    const PageNum next = page + static_cast<PageNum>(k);
    auto it = pages_.find(next);
    if (it == pages_.end() || it->second.busy || it->second.owner != owner ||
        (it->second.sharer_mask & Bit(requester)) != 0 ||
        ClassOf(next) != PageClass::kGuestPrivate) {
      break;  // only a contiguous same-owner run is worth piggybacking
    }
    prefetch.push_back(next);
  }

  const uint64_t reply_bytes = kPageDataBytes + 4096 * prefetch.size();
  auto deliver = [this, page, requester, owner, prefetch = std::move(prefetch), reply_bytes,
                  txn = std::move(txn)]() mutable {
    // Owner downgrades to read (single-writer protocol) and ships the pages.
    PageAccess& owner_acc = ResidentSlot(owner, page);
    if (owner_acc == PageAccess::kWrite) {
      owner_acc = PageAccess::kRead;
    }
    for (const PageNum p : prefetch) {
      PageAccess& acc = ResidentSlot(owner, p);
      if (acc == PageAccess::kWrite) {
        acc = PageAccess::kRead;
      }
    }
    SendProto(owner, requester, MsgKind::kDsmPageData, reply_bytes,
              [this, page, requester, owner, prefetch = std::move(prefetch),
               txn = std::move(txn)]() mutable {
                loop_->ScheduleAfter(
                    costs_->dsm_map_page,
                    [this, page, requester, owner, prefetch = std::move(prefetch),
                     txn = std::move(txn)]() mutable {
                      PageState& dir = pages_[page];
                      dir.sharer_mask |= Bit(requester);
                      ResidentSlot(requester, page) = PageAccess::kRead;
                      for (const PageNum p : prefetch) {
                        // Skip any page a racing transaction touched while
                        // the reply was in flight (stale speculative data).
                        PageState& pdir = pages_[p];
                        if (pdir.busy || pdir.owner != owner ||
                            ResidentAccess(owner, p) != PageAccess::kRead) {
                          continue;
                        }
                        pdir.sharer_mask |= Bit(requester);
                        ResidentSlot(requester, p) = PageAccess::kRead;
                        stats_.prefetched_pages.Add(1);
                      }
                      CompleteFault(page, txn);
                      FinishTransaction(page);
                    });
              });
  };

  if (owner == options_.home) {
    deliver();
  } else {
    // Home forwards the request to the current owner.
    SendProto(options_.home, owner, MsgKind::kControl, kMsgHeaderBytes, std::move(deliver));
  }
}

void DsmEngine::RunWriteProtocol(PageNum page, Transaction txn) {
  PageState& st = pages_[page];
  const NodeId requester = txn.requester;
  const NodeId owner = st.owner;
  FV_CHECK_NE(owner, kInvalidNode);

  const bool upgrade = ResidentAccess(requester, page) == PageAccess::kRead;

  std::vector<NodeId> targets;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (n != requester && (st.sharer_mask & Bit(n)) != 0) {
      targets.push_back(n);
    }
  }

  struct WriteCtx {
    int acks_pending = 0;
    bool page_pending = false;
    Transaction txn;
  };
  auto ctx = std::make_shared<WriteCtx>();
  ctx->txn = std::move(txn);
  ctx->acks_pending = static_cast<int>(targets.size());
  ctx->page_pending = !upgrade && !targets.empty();

  auto maybe_finish = [this, page, requester, ctx]() {
    if (ctx->acks_pending > 0 || ctx->page_pending) {
      return;
    }
    PageState& dir = pages_[page];
    dir.owner = requester;
    dir.sharer_mask = Bit(requester);
    dir.hold_until = loop_->now() + costs_->dsm_ownership_hold;
    ResidentSlot(requester, page) = PageAccess::kWrite;
    if (options_.ept_dirty_tracking) {
      // A/D-bit updates generate one extra (asynchronous) sync message.
      SendProto(requester, options_.home, MsgKind::kDsmAck, kMsgHeaderBytes, []() {});
    }
    CompleteFault(page, ctx->txn);
    FinishTransaction(page);
  };

  if (targets.empty()) {
    // Sole (or no) sharer: home grants directly.
    stats_.page_transfers.Add(upgrade ? 0 : 1);
    const uint64_t bytes = upgrade ? kMsgHeaderBytes : kPageDataBytes;
    const MsgKind kind = upgrade ? MsgKind::kDsmAck : MsgKind::kDsmPageData;
    SendProto(options_.home, requester, kind, bytes,
              [this, maybe_finish]() mutable { loop_->ScheduleAfter(costs_->dsm_map_page, maybe_finish); });
    return;
  }

  for (const NodeId s : targets) {
    stats_.invalidations.Add(1);
    SendProto(options_.home, s, MsgKind::kDsmInvalidate, kMsgHeaderBytes,
              [this, page, s, owner, requester, upgrade, ctx, maybe_finish]() mutable {
                ResidentSlot(s, page) = PageAccess::kNone;
                const bool ships_page = (s == owner) && !upgrade;
                if (ships_page) {
                  stats_.page_transfers.Add(1);
                  SendProto(s, requester, MsgKind::kDsmPageData, kPageDataBytes,
                            [this, ctx, maybe_finish]() mutable {
                              loop_->ScheduleAfter(costs_->dsm_map_page,
                                                   [ctx, maybe_finish]() mutable {
                                                     ctx->page_pending = false;
                                                     maybe_finish();
                                                   });
                            });
                }
                SendProto(s, options_.home, MsgKind::kDsmAck, kMsgHeaderBytes,
                          [ctx, maybe_finish]() mutable {
                            --ctx->acks_pending;
                            maybe_finish();
                          });
              });
  }
}

void DsmEngine::RunPageTablePiggyback(PageNum page, Transaction txn) {
  // Contextual DSM: the PTE delta rides on the TLB-shootdown interrupt the
  // guest sends anyway. No invalidation round, no full-page transfer; sharers
  // keep their (delta-updated) replicas.
  PageState& st = pages_[page];
  const NodeId requester = txn.requester;

  for (int n = 0; n < options_.num_nodes; ++n) {
    if (n != requester && (st.sharer_mask & Bit(n)) != 0) {
      SendProto(options_.home, n, MsgKind::kTlbShootdown, kPteDeltaBytes, []() {});
    }
  }

  SendProto(options_.home, requester, MsgKind::kDsmAck, kMsgHeaderBytes,
            [this, page, requester, txn = std::move(txn)]() mutable {
              PageState& dir = pages_[page];
              dir.owner = requester;
              dir.sharer_mask |= Bit(requester);
              dir.hold_until = loop_->now() + costs_->dsm_ownership_hold;
              ResidentSlot(requester, page) = PageAccess::kWrite;
              CompleteFault(page, txn);
              FinishTransaction(page);
            });
}

uint64_t DsmEngine::CheckInvariants() const {
  uint64_t checked = 0;
  for (const auto& [page, st] : pages_) {
    if (st.busy) {
      continue;  // transient protocol state; only quiescent pages are checked
    }
    ++checked;
    FV_CHECK_NE(st.owner, kInvalidNode);
    FV_CHECK((st.sharer_mask & Bit(st.owner)) != 0);
    const PageClass cls = ClassOf(page);
    // Delta-replicated classes (contextual DSM): page-table pages receive
    // piggybacked updates in place, so several nodes may legitimately hold
    // writable replicas; the same goes for bypassed IO rings.
    const bool relaxed = cls == PageClass::kPageTable || cls == PageClass::kIoRing;
    int writers = 0;
    for (int n = 0; n < options_.num_nodes; ++n) {
      const PageAccess acc = ResidentAccess(n, page);
      const bool in_mask = (st.sharer_mask & Bit(n)) != 0;
      if (acc == PageAccess::kNone) {
        FV_CHECK(!in_mask);
        continue;
      }
      FV_CHECK(in_mask);
      if (acc == PageAccess::kWrite) {
        ++writers;
        if (!relaxed) {
          FV_CHECK_EQ(n, st.owner);
        }
      }
    }
    if (!relaxed) {
      FV_CHECK_LE(writers, 1);
      if (writers == 1) {
        // Strict classes: a writer excludes all other copies.
        FV_CHECK_EQ(st.sharer_mask, Bit(st.owner));
      }
    }
  }
  return checked;
}

}  // namespace fragvisor
