#include "src/mem/dsm.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>

#include "src/sim/check.h"
#include "src/sim/snapshot.h"
#include "src/sim/state_io.h"

namespace fragvisor {
namespace {

// Protocol message sizes on the wire.
constexpr uint64_t kMsgHeaderBytes = 64;
constexpr uint64_t kPageDataBytes = 4096 + kMsgHeaderBytes;
constexpr uint64_t kPteDeltaBytes = 256;  // piggybacked page-table delta
constexpr uint64_t kPageBytes = kPageDataBytes - kMsgHeaderBytes;  // raw 4 KiB payload

}  // namespace

const char* PageClassName(PageClass cls) {
  switch (cls) {
    case PageClass::kGuestPrivate:
      return "guest_private";
    case PageClass::kKernelShared:
      return "kernel_shared";
    case PageClass::kPageTable:
      return "page_table";
    case PageClass::kIoRing:
      return "io_ring";
    case PageClass::kReadMostly:
      return "read_mostly";
    case PageClass::kCount:
      break;
  }
  return "unknown";
}

DsmEngine::DsmEngine(EventLoop* loop, RpcLayer* rpc, const CostModel* costs,
                     const Options& options)
    : loop_(loop), rpc_(rpc), costs_(costs), options_(options) {
  FV_CHECK(loop != nullptr);
  FV_CHECK(rpc != nullptr);
  FV_CHECK(costs != nullptr);
  FV_CHECK_GT(options.num_nodes, 0);
  FV_CHECK_LE(options.num_nodes, kMaxNodes);
  FV_CHECK_GE(options.home, 0);
  FV_CHECK_LT(options.home, options.num_nodes);
  FV_CHECK_GE(options.max_region_pages, 1);
  node_faults_.resize(static_cast<size_t>(options.num_nodes));
  if (options_.owner_hints) {
    hints_.resize(static_cast<size_t>(options_.num_nodes));
  }
  stats_.txn_retries.Init(options.num_nodes);
  stats_.txn_absorbed.Init(options.num_nodes);
  stats_.write_aborts.Init(options.num_nodes);
  proto_accounting_.messages = &stats_.protocol_messages;
  proto_accounting_.bytes = &stats_.protocol_bytes;
}

DsmEngine::Leaf& DsmEngine::EnsureLeaf(PageNum page) {
  FV_CHECK_LT(page, kMaxPages);
  const size_t li = page >> kLeafBits;
  if (li >= leaves_.size()) {
    leaves_.resize(li + 1);
  }
  if (leaves_[li] == nullptr) {
    leaves_[li] = std::make_unique<Leaf>();
  }
  return *leaves_[li];
}

DsmEngine::Leaf& DsmEngine::EnsurePage(PageNum page) {
  Leaf& leaf = EnsureLeaf(page);
  const uint32_t i = Index(page);
  if (!TestBit(leaf.known, i)) {
    // First touch anywhere: the origin backs the boot image and all fresh
    // anonymous memory, exactly like Popcorn's origin node.
    SetBit(leaf.known, i);
    ++known_pages_;
    leaf.owner[i] = static_cast<int16_t>(options_.home);
    leaf.sharers[i] = Bit(options_.home);
    SetBit(leaf.present[static_cast<size_t>(options_.home)], i);
    SetBit(leaf.writable[static_cast<size_t>(options_.home)], i);
  }
  return leaf;
}

void DsmEngine::SetResident(Leaf& leaf, uint32_t i, NodeId node, PageAccess acc) {
  const auto n = static_cast<size_t>(node);
  switch (acc) {
    case PageAccess::kNone:
      ClearBit(leaf.present[n], i);
      ClearBit(leaf.writable[n], i);
      break;
    case PageAccess::kRead:
      SetBit(leaf.present[n], i);
      ClearBit(leaf.writable[n], i);
      break;
    case PageAccess::kWrite:
      SetBit(leaf.present[n], i);
      SetBit(leaf.writable[n], i);
      // Journal: a write grant means the local copy diverges from the last
      // checkpoint image the moment the node uses it.
      SetBit(leaf.dirty[n], i);
      break;
  }
}

void DsmEngine::ResetResidency(Leaf& leaf, uint32_t i, NodeId keep) {
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (n != keep) {
      SetResident(leaf, i, n, PageAccess::kNone);
    }
  }
  SetResident(leaf, i, keep, PageAccess::kWrite);
}

void DsmEngine::SeedRange(PageNum start, uint64_t count, NodeId owner) {
  FV_CHECK_GE(owner, 0);
  FV_CHECK_LT(owner, options_.num_nodes);
  for (PageNum p = start; p < start + count; ++p) {
    Leaf& leaf = EnsureLeaf(p);
    const uint32_t i = Index(p);
    FV_CHECK(!TestBit(leaf.busy, i));
    if (!TestBit(leaf.known, i)) {
      SetBit(leaf.known, i);
      ++known_pages_;
    }
    leaf.owner[i] = static_cast<int16_t>(owner);
    leaf.sharers[i] = Bit(owner);
    // Clear any stale residency on other nodes (re-seeding in tests).
    ResetResidency(leaf, i, owner);
  }
}

void DsmEngine::SetPageClass(PageNum start, uint64_t count, PageClass cls) {
  FV_CHECK_GT(count, 0u);
  class_ranges_[start] = {start + count, cls};
}

PageClass DsmEngine::ClassOf(PageNum page) const {
  auto it = class_ranges_.upper_bound(page);
  if (it == class_ranges_.begin()) {
    return PageClass::kGuestPrivate;
  }
  --it;
  if (page < it->second.first) {
    return it->second.second;
  }
  return PageClass::kGuestPrivate;
}

PageAccess DsmEngine::ResidentAccess(NodeId node, PageNum page) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  const Leaf* leaf = FindLeaf(page);
  return leaf == nullptr ? PageAccess::kNone : AccessOf(*leaf, Index(page), node);
}

NodeId DsmEngine::OwnerOf(PageNum page) const {
  const Leaf* leaf = FindLeaf(page);
  if (leaf == nullptr || !TestBit(leaf->known, Index(page))) {
    return kInvalidNode;
  }
  return leaf->owner[Index(page)];
}

std::vector<PageNum> DsmEngine::PagesOwnedBy(NodeId node) const {
  std::vector<PageNum> out;
  for (size_t li = 0; li < leaves_.size(); ++li) {
    const Leaf* leaf = leaves_[li].get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t w = 0; w < kLeafWords; ++w) {
      uint64_t bits = leaf->known[w];
      while (bits != 0) {
        const uint32_t i = w * 64 + static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (leaf->owner[i] == node) {
          out.push_back((static_cast<PageNum>(li) << kLeafBits) | i);
        }
      }
    }
  }
  return out;
}

uint64_t DsmEngine::ReseedOwnedBy(NodeId from, NodeId to) {
  FV_CHECK_GE(to, 0);
  FV_CHECK_LT(to, options_.num_nodes);
  uint64_t moved = 0;
  for (auto& leaf_ptr : leaves_) {
    Leaf* leaf = leaf_ptr.get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t w = 0; w < kLeafWords; ++w) {
      uint64_t bits = leaf->known[w] & ~leaf->busy[w];
      while (bits != 0) {
        const uint32_t i = w * 64 + static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (leaf->owner[i] != from) {
          continue;
        }
        leaf->owner[i] = static_cast<int16_t>(to);
        leaf->sharers[i] = Bit(to);
        leaf->hold_until[i] = 0;
        ResetResidency(*leaf, i, to);
        ++moved;
      }
    }
  }
  return moved;
}

void DsmEngine::ClearDirtyJournal() {
  for (auto& leaf_ptr : leaves_) {
    Leaf* leaf = leaf_ptr.get();
    if (leaf == nullptr) {
      continue;
    }
    for (int n = 0; n < options_.num_nodes; ++n) {
      for (uint32_t w = 0; w < kLeafWords; ++w) {
        leaf->dirty[n][w] = 0;
      }
    }
  }
}

uint64_t DsmEngine::DirtyPageCount(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  uint64_t count = 0;
  for (const auto& leaf_ptr : leaves_) {
    const Leaf* leaf = leaf_ptr.get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t w = 0; w < kLeafWords; ++w) {
      count += static_cast<uint64_t>(std::popcount(leaf->dirty[static_cast<size_t>(node)][w]));
    }
  }
  return count;
}

bool DsmEngine::IsDirty(NodeId node, PageNum page) const {
  const Leaf* leaf = FindLeaf(page);
  return leaf != nullptr && TestBit(leaf->dirty[static_cast<size_t>(node)], Index(page));
}

DsmEngine::PartialLossReport DsmEngine::RecoverDeadOwner(NodeId dead, NodeId fallback) {
  FV_CHECK_GE(dead, 0);
  FV_CHECK_LT(dead, options_.num_nodes);
  FV_CHECK_NE(dead, options_.home);  // home death means full restore, not surgery
  FV_CHECK_GE(fallback, 0);
  FV_CHECK_LT(fallback, options_.num_nodes);
  FV_CHECK_NE(fallback, dead);
  PartialLossReport report;
  const auto d = static_cast<size_t>(dead);
  for (auto& leaf_ptr : leaves_) {
    Leaf* leaf = leaf_ptr.get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t w = 0; w < kLeafWords; ++w) {
      uint64_t bits = leaf->known[w] & ~leaf->busy[w];
      while (bits != 0) {
        const uint32_t i = w * 64 + static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const bool was_owner = leaf->owner[i] == dead;
        const bool was_dirty = TestBit(leaf->dirty[d], i);
        // Strip the dead node everywhere first (residency, mask, journal).
        if ((leaf->sharers[i] & Bit(dead)) != 0 || TestBit(leaf->present[d], i)) {
          SetResident(*leaf, i, dead, PageAccess::kNone);
          leaf->sharers[i] &= ~Bit(dead);
          stats_.pages_reclaimed.Add(1);
        }
        ClearBit(leaf->dirty[d], i);
        if (!was_owner) {
          continue;
        }
        ++report.pages_owned;
        // A surviving read replica preserves the page's current content:
        // promote the lowest surviving sharer to owner, no restore needed.
        NodeId survivor = kInvalidNode;
        for (int n = 0; n < options_.num_nodes; ++n) {
          if ((leaf->sharers[i] & Bit(n)) != 0) {
            survivor = n;
            break;
          }
        }
        if (survivor != kInvalidNode) {
          leaf->owner[i] = static_cast<int16_t>(survivor);
          leaf->hold_until[i] = 0;
          ++report.promoted_sharers;
          stats_.pages_promoted.Add(1);
          continue;
        }
        // Only copy died. The checkpoint image is current unless the dead
        // node wrote the page after it was taken — the journal knows.
        leaf->owner[i] = static_cast<int16_t>(fallback);
        leaf->sharers[i] = Bit(fallback);
        leaf->hold_until[i] = 0;
        ResetResidency(*leaf, i, fallback);
        if (was_dirty) {
          ++report.lost_dirty;
          stats_.pages_lost_dirty.Add(1);
        } else {
          ++report.rehomed_clean;
          stats_.pages_rehomed_clean.Add(1);
        }
      }
    }
  }
  return report;
}

uint64_t DsmEngine::FaultsByNode(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  return node_faults_[static_cast<size_t>(node)].value();
}

uint64_t DsmEngine::ResidentPageCount(NodeId node) const {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  uint64_t count = 0;
  for (const auto& leaf_ptr : leaves_) {
    const Leaf* leaf = leaf_ptr.get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t w = 0; w < kLeafWords; ++w) {
      count += static_cast<uint64_t>(std::popcount(leaf->present[static_cast<size_t>(node)][w]));
    }
  }
  return count;
}

void DsmEngine::MigrateOwnedPages(NodeId from, NodeId to,
                                  std::function<void(uint64_t moved)> done) {
  FV_CHECK_GE(to, 0);
  FV_CHECK_LT(to, options_.num_nodes);
  FV_CHECK_NE(from, to);
  FV_CHECK(done != nullptr);
  // Snapshot the candidate set now; pages that become busy before their
  // batch ships stay behind (demand paging will move them later).
  auto candidates = std::make_shared<std::vector<PageNum>>(PagesOwnedBy(from));
  auto moved = std::make_shared<uint64_t>(0);
  constexpr size_t kBatchPages = 256;  // 1 MiB wire batches

  auto ship_batch = std::make_shared<std::function<void(size_t)>>();
  // The stored lambda refers to itself only weakly (continuation callbacks
  // hold the strong references) so the self-referential std::function does
  // not leak through a shared_ptr cycle.
  std::weak_ptr<std::function<void(size_t)>> weak_ship = ship_batch;
  *ship_batch = [this, from, to, candidates, moved, weak_ship,
                 done = std::move(done)](size_t start) mutable {
    auto self = weak_ship.lock();
    if (start >= candidates->size()) {
      done(*moved);
      return;
    }
    const size_t end = std::min(start + kBatchPages, candidates->size());
    // Claim eligible pages for this batch: still owned by `from`, idle.
    auto batch = std::make_shared<std::vector<PageNum>>();
    for (size_t i = start; i < end; ++i) {
      const PageNum page = (*candidates)[i];
      Leaf* leaf = FindLeaf(page);
      const uint32_t pi = Index(page);
      if (leaf == nullptr || !TestBit(leaf->known, pi) || TestBit(leaf->busy, pi) ||
          leaf->owner[pi] != from) {
        continue;
      }
      // Mark busy so racing faults queue behind the migration.
      SetBit(leaf->busy, pi);
      batch->push_back(page);
    }
    if (batch->empty()) {
      loop_->ScheduleAfter(0, [self, end]() { (*self)(end); });
      return;
    }
    const uint64_t bytes = 4096 * batch->size() + 256;
    // If the fabric abandons the batch (dead/partitioned target), the pages
    // stay behind for demand paging: release their busy bits, wake waiters,
    // and keep walking the candidate list.
    auto release_batch = [this, batch, self, end]() {
      for (const PageNum page : *batch) {
        Leaf& leaf = EnsurePage(page);
        const uint32_t pi = Index(page);
        ClearBit(leaf.busy, pi);
        auto wit = waiters_.find(page);
        if (wit != waiters_.end() && !wit->second.empty()) {
          Transaction next = std::move(wit->second.front());
          wit->second.pop_front();
          if (wit->second.empty()) {
            waiters_.erase(wit);
          }
          SetBit(leaf.busy, pi);
          loop_->ScheduleAfter(0, [this, page, next = std::move(next)]() mutable {
            ExecuteTransaction(page, std::move(next));
          });
        }
      }
      (*self)(end);
    };
    // Slice-migration batches are background traffic: under the QoS
    // scheduler they yield the link to latency-critical protocol messages.
    SendProto(from, to, MsgKind::kDsmPageData, bytes,
              [this, to, batch, moved, self, end]() {
                for (const PageNum page : *batch) {
                  Leaf& leaf = EnsurePage(page);
                  const uint32_t pi = Index(page);
                  leaf.owner[pi] = static_cast<int16_t>(to);
                  leaf.sharers[pi] = Bit(to);
                  leaf.hold_until[pi] = 0;
                  ResetResidency(leaf, pi, to);
                  ClearBit(leaf.busy, pi);
                  // Wake any fault that queued while the batch was in flight.
                  auto wit = waiters_.find(page);
                  if (wit != waiters_.end() && !wit->second.empty()) {
                    Transaction next = std::move(wit->second.front());
                    wit->second.pop_front();
                    if (wit->second.empty()) {
                      waiters_.erase(wit);
                    }
                    SetBit(leaf.busy, pi);
                    loop_->ScheduleAfter(0, [this, page, next = std::move(next)]() mutable {
                      ExecuteTransaction(page, std::move(next));
                    });
                  }
                }
                *moved += batch->size();
                (*self)(end);
              },
              std::move(release_batch), QosClass::kBulk);
  };
  (*ship_batch)(0);
}

bool DsmEngine::WouldHit(NodeId node, PageNum page, bool is_write) const {
  const Leaf* leaf = FindLeaf(page);
  if (leaf == nullptr) {
    return false;
  }
  const auto n = static_cast<size_t>(node);
  const uint32_t i = Index(page);
  if (is_write) {
    return TestBit(leaf->writable[n], i);
  }
  return TestBit(leaf->present[n], i);
}

TimeNs DsmEngine::HandlerCost() const {
  TimeNs cost = costs_->dsm_handler;
  if (options_.userspace_dsm) {
    cost += costs_->dsm_userspace_extra;
  }
  return cost;
}

void DsmEngine::SendProto(NodeId src, NodeId dst, MsgKind kind, uint64_t bytes,
                          EventLoop::Callback cb, EventLoop::Callback on_fail, QosClass qos,
                          TimeNs receiver_delay) {
  // The receiver-side handler cost rides on the delivery event as a relay:
  // no nested callback, no allocation per protocol hop. Retransmissions (with
  // a fault plan attached) count once here and per-attempt in FabricStats.
  // A non-negative receiver_delay overrides the handler cost — the one-sided
  // read path passes 0 because no remote CPU runs.
  RpcLayer::CallOpts opts;
  opts.qos = qos;
  opts.receiver_delay = receiver_delay >= 0 ? receiver_delay : HandlerCost();
  opts.account = &proto_accounting_;
  opts.on_fail = std::move(on_fail);
  rpc_->Call(src, dst, kind, bytes, std::move(cb), std::move(opts));
}

bool DsmEngine::Access(NodeId node, PageNum page, bool is_write, std::function<void()> done) {
  FV_CHECK_GE(node, 0);
  FV_CHECK_LT(node, options_.num_nodes);
  // Fast path: two array indexes and a bit test.
  Leaf& leaf = EnsurePage(page);
  const uint32_t i = Index(page);
  const auto n = static_cast<size_t>(node);
  if (is_write) {
    if (TestBit(leaf.writable[n], i)) {
      // Journal the store (a node can keep writing long after the grant that
      // first set its dirty bit was cleared by a checkpoint). Pure
      // bookkeeping: no message, no event, no timing change.
      SetBit(leaf.dirty[n], i);
      return true;
    }
  } else if (TestBit(leaf.present[n], i)) {
    return true;
  }

  const PageClass cls = ClassOf(page);
  if (is_write) {
    stats_.write_faults.Add(1);
  } else {
    stats_.read_faults.Add(1);
  }
  stats_.faults_by_class[static_cast<size_t>(cls)].Add(1);
  node_faults_[n].Add(1);
  if (options_.read_mostly_replication && cls == PageClass::kGuestPrivate) {
    UpdateReadMostlyDetector(leaf, is_write);
  }

  Transaction txn;
  txn.requester = node;
  txn.is_write = is_write;
  txn.start_time = loop_->now();
  txn.done = std::move(done);
  loop_->Trace(TraceCategory::kDsm, is_write ? "write_fault" : "read_fault",
               "node=" + std::to_string(node) + " page=" + std::to_string(page) + " class=" +
                   PageClassName(cls));

  // Requester side: VM exit, fault decode, request dispatch.
  const TimeNs local = costs_->ept_fault_vmexit + HandlerCost();
  const MsgKind kind = is_write ? MsgKind::kDsmWriteReq : MsgKind::kDsmReadReq;
  loop_->ScheduleAfter(local, [this, page, kind, txn = std::move(txn)]() mutable {
    DispatchFaultRequest(page, kind, std::move(txn));
  });
  return false;
}

NodeId DsmEngine::HintFor(NodeId node, PageNum page) const {
  if (hints_.empty()) {
    return kInvalidNode;
  }
  const auto& per_node = hints_[static_cast<size_t>(node)];
  const size_t li = page >> kLeafBits;
  if (li >= per_node.size() || per_node[li] == nullptr) {
    return kInvalidNode;
  }
  const int16_t pred = per_node[li]->pred[Index(page)];
  return pred < 0 ? kInvalidNode : static_cast<NodeId>(pred);
}

void DsmEngine::SetHint(NodeId node, PageNum page, NodeId owner) {
  if (!options_.owner_hints) {
    return;
  }
  auto& per_node = hints_[static_cast<size_t>(node)];
  const size_t li = page >> kLeafBits;
  if (li >= per_node.size()) {
    per_node.resize(li + 1);
  }
  if (per_node[li] == nullptr) {
    per_node[li] = std::make_unique<HintLeaf>();
  }
  per_node[li]->pred[Index(page)] = static_cast<int16_t>(owner);
}

DsmEngine::DeltaLeaf* DsmEngine::DeltaFor(PageNum page) const {
  const size_t li = page >> kLeafBits;
  if (li >= delta_.size()) {
    return nullptr;
  }
  return delta_[li].get();
}

DsmEngine::DeltaLeaf& DsmEngine::EnsureDelta(PageNum page) {
  const size_t li = page >> kLeafBits;
  if (li >= delta_.size()) {
    delta_.resize(li + 1);
  }
  if (delta_[li] == nullptr) {
    delta_[li] = std::make_unique<DeltaLeaf>();
  }
  return *delta_[li];
}

void DsmEngine::BumpPageVersion(PageNum page, NodeId writer) {
  if (!options_.compress) {
    return;
  }
  DeltaLeaf& d = EnsureDelta(page);
  const uint32_t i = Index(page);
  ++d.version[i];
  // The writer holds the freshest content by definition; record it so a later
  // downgrade-and-refetch on the writer itself can go out as a delta.
  d.last[static_cast<size_t>(writer)][i] = d.version[i];
}

uint64_t DsmEngine::TransferPayloadBytes(PageNum page, NodeId to, uint64_t payload) {
  if (!options_.compress) {
    return payload;
  }
  DeltaLeaf& d = EnsureDelta(page);
  const uint32_t i = Index(page);
  const uint16_t version = d.version[i];
  uint16_t& last = d.last[static_cast<size_t>(to)][i];
  uint64_t wire;
  // Delta-diff an invalidate-refetch cycle: the receiver held version `last`
  // of this page, so only the writes since then go on the wire. Beyond a few
  // versions behind (or on wraparound) a full compressed page is cheaper.
  const uint16_t behind = static_cast<uint16_t>(version - last);
  if (last != 0 && behind <= 4) {
    wire = DeltaPayloadBytes(payload, behind);
    stats_.delta_transfers.Add(1);
  } else {
    wire = CompressedPayloadBytes(options_.compress_seed, page, payload);
    if (wire < payload) {
      stats_.compressed_transfers.Add(1);
    }
  }
  last = version;
  stats_.transfer_bytes_saved.Add(payload - wire);
  return wire;
}

bool DsmEngine::IsReadMostly(const Leaf& leaf, PageNum page) const {
  if (!options_.read_mostly_replication) {
    return false;
  }
  return ClassOf(page) == PageClass::kReadMostly ||
         (leaf.rm_promoted && ClassOf(page) == PageClass::kGuestPrivate);
}

NodeId DsmEngine::PickReadReplica(NodeId requester, PageNum page) const {
  const Leaf* leaf = FindLeaf(page);
  const uint32_t i = Index(page);
  if (leaf == nullptr || !TestBit(leaf->known, i) || !IsReadMostly(*leaf, page)) {
    return kInvalidNode;
  }
  uint32_t mask = leaf->sharers[i] & ~Bit(requester);
  while (mask != 0) {
    const NodeId n = static_cast<NodeId>(std::countr_zero(mask));
    mask &= mask - 1;
    if (rpc_->NodeUp(n)) {
      return n;
    }
  }
  return kInvalidNode;
}

void DsmEngine::UpdateReadMostlyDetector(Leaf& leaf, bool is_write) {
  if (is_write) {
    ++leaf.rm_writes;
    // Write pressure demotes the leaf and restarts the history: a phase
    // change (initialization -> read-mostly -> update burst) re-learns.
    if (leaf.rm_promoted && leaf.rm_writes * 4 >= leaf.rm_reads) {
      leaf.rm_promoted = false;
      leaf.rm_reads = 0;
      leaf.rm_writes = 0;
    }
    return;
  }
  ++leaf.rm_reads;
  if (!leaf.rm_promoted && leaf.rm_reads >= 64 && leaf.rm_writes * 8 <= leaf.rm_reads) {
    leaf.rm_promoted = true;
    stats_.read_mostly_promotions.Add(1);
  }
}

TimeNs DsmEngine::OwnershipHold(Leaf& leaf, uint32_t i, bool ownership_moved) {
  const TimeNs base = costs_->dsm_ownership_hold;
  if (!options_.adaptive_granularity) {
    return base;
  }
  uint8_t boost = leaf.hold_boost[i];
  if (ownership_moved && leaf.hold_until[i] != 0) {
    const TimeNs now = loop_->now();
    const TimeNs since_expiry = now > leaf.hold_until[i] ? now - leaf.hold_until[i] : 0;
    if (since_expiry < base) {
      // Ping-pong signature: a competitor was already queued and took the
      // page the moment the previous hold expired. Double the hold so each
      // owner amortizes the transfer over more local work.
      if ((base << (boost + 1)) <= costs_->dsm_ownership_hold_max) {
        ++boost;
        stats_.hold_escalations.Add(1);
      }
    } else if (since_expiry > 4 * base && boost > 0) {
      // Contention cleared: decay back toward the paper's fixed hold.
      --boost;
    }
  }
  leaf.hold_boost[i] = boost;
  return base << boost;
}

int DsmEngine::StreamRegionPages(Leaf& leaf, uint32_t i, NodeId node) {
  const auto n = static_cast<size_t>(node);
  uint8_t run = 1;
  if (leaf.stream_next[n] == i && leaf.stream_run[n] < 15) {
    run = static_cast<uint8_t>(leaf.stream_run[n] + 1);
  }
  leaf.stream_run[n] = run;
  // i + 1 == kLeafPages falls off the leaf: kStreamIdle-like, never matches.
  leaf.stream_next[n] = static_cast<uint16_t>(i + 1);
  if (run < 2) {
    return 1;
  }
  const int width = 1 << std::min<int>(run, 30);
  return std::min(width, options_.max_region_pages);
}

void DsmEngine::DispatchFaultRequest(PageNum page, MsgKind kind, Transaction txn) {
  // --- Fast-path routing (inert with the options off) ---
  if (options_.read_mostly_replication && kind == MsgKind::kDsmReadReq) {
    const NodeId replica = PickReadReplica(txn.requester, page);
    if (replica != kInvalidNode) {
      txn.via = replica;
      txn.via_replica = true;
      SendViaRequest(page, kind, replica, std::move(txn));
      return;
    }
  }
  if (options_.owner_hints && ClassOf(page) != PageClass::kPageTable &&
      !(kind == MsgKind::kDsmWriteReq && options_.read_mostly_replication &&
        IsReadMostly(EnsurePage(page), page))) {
    const NodeId hint = HintFor(txn.requester, page);
    if (hint != kInvalidNode && hint != txn.requester && hint != options_.home &&
        rpc_->NodeUp(hint)) {
      txn.via = hint;
      txn.via_replica = false;
      SendViaRequest(page, kind, hint, std::move(txn));
      return;
    }
  }
  DispatchHomeRequest(page, kind, std::move(txn));
}

void DsmEngine::SendViaRequest(PageNum page, MsgKind kind, NodeId target, Transaction txn) {
  auto txp = std::make_shared<Transaction>(std::move(txn));
  // One-sided read fast path: the requester knows exactly where the page
  // lives (hint or replica), so the wire-level read posts straight against
  // the target's registered memory — no remote CPU handler runs on the
  // request leg (receiver_delay 0). The verb setup/posting cost is charged
  // at the requester before the read hits the wire. A stale hint still takes
  // the two-sided fallback below, as a real one-sided read would after
  // validation fails.
  TimeNs receiver_delay = -1;
  TimeNs setup = 0;
  if (RdmaEligible(kind)) {
    receiver_delay = 0;
    setup = rpc_->fabric()->link_params(txp->requester, target).one_sided_setup;
    stats_.rdma_reads.Add(1);
  }
  auto issue = [this, page, kind, target, txp, receiver_delay]() mutable {
    SendProto(
        txp->requester, target, kind, kMsgHeaderBytes,
        [this, page, txp]() mutable { StartTransaction(page, std::move(*txp)); },
        [this, page, kind, txp]() mutable {
              // The predicted owner / replica became unreachable mid-flight:
              // drop the prediction and fall back onto the home-directed
              // path, which owns the full retry state machine. No busy bit
              // is held yet, so the fallback is a fresh dispatch.
              Transaction t = std::move(*txp);
              const bool was_hint = !t.via_replica;
              t.via = kInvalidNode;
              t.via_replica = false;
              if (was_hint) {
                SetHint(t.requester, page, kInvalidNode);
                stats_.hint_stale.Add(1);
              }
              if (!rpc_->NodeUp(t.requester)) {
                stats_.txn_absorbed.Add(t.requester);
                loop_->Trace(TraceCategory::kFault, "dsm_req_absorbed",
                             "node=" + std::to_string(t.requester) +
                                 " page=" + std::to_string(page));
                if (t.done) {
                  t.done();
                }
                return;
              }
          stats_.txn_retries.Add(t.requester);
          loop_->Trace(TraceCategory::kFault, "dsm_hint_redirect",
                       "node=" + std::to_string(t.requester) + " page=" +
                           std::to_string(page));
          DispatchHomeRequest(page, kind, std::move(t));
        },
        QosClass::kLatency, receiver_delay);
  };
  if (setup > 0) {
    loop_->ScheduleAfter(setup, std::move(issue));
  } else {
    issue();
  }
}

void DsmEngine::DispatchHomeRequest(PageNum page, MsgKind kind, Transaction txn) {
  // The rpc layer owns the requester-side retry state machine: if the fabric
  // gives up on a request that never reached the directory (no busy bit is
  // held), the call is re-issued after backoff while the requester is alive
  // and abandoned once it is not.
  const NodeId node = txn.requester;
  if (rpc_->fault_plan() == nullptr) {
    // No faults possible: keep the request allocation-free.
    SendProto(node, options_.home, kind, kMsgHeaderBytes,
              [this, page, txn = std::move(txn)]() mutable {
                StartTransaction(page, std::move(txn));
              });
    return;
  }
  RpcLayer::CallOpts opts;
  opts.receiver_delay = HandlerCost();
  opts.account = &proto_accounting_;
  RpcLayer::RetrySpec spec;
  spec.token = page;
  spec.token_key = "page";
  spec.retry_counter = &stats_.txn_retries;
  spec.abandon_counter = &stats_.txn_absorbed;
  spec.trace_retry = "dsm_req_retry";
  spec.trace_abandon = "dsm_req_absorbed";
  auto txp = std::make_shared<Transaction>(std::move(txn));
  rpc_->CallWithRetry(
      node, options_.home, kind, kMsgHeaderBytes,
      [this, page, txp]() mutable { StartTransaction(page, std::move(*txp)); },
      [txp]() {
        Transaction t = std::move(*txp);
        if (t.done) {
          t.done();
        }
      },
      spec, std::move(opts));
}

TimeNs DsmEngine::RetryBackoff(int attempts) const {
  const TimeNs base = Micros(500);
  const TimeNs cap = Millis(50);
  const int shift = std::min(attempts, 7);
  return std::min(base << shift, cap);
}

void DsmEngine::HandleTxnSendFailure(PageNum page, Transaction txn) {
  if (!rpc_->NodeUp(txn.requester)) {
    AbsorbTransaction(page, std::move(txn));
    return;
  }
  ScheduleTxnRetry(page, std::move(txn));
}

void DsmEngine::ScheduleTxnRetry(PageNum page, Transaction txn) {
  ++txn.attempts;
  const TimeNs backoff = RetryBackoff(txn.attempts);
  loop_->ScheduleAfter(backoff, [this, page, txn = std::move(txn)]() mutable {
    RetryTransaction(page, std::move(txn));
  });
}

void DsmEngine::RetryTransaction(PageNum page, Transaction txn) {
  if (!rpc_->NodeUp(txn.requester)) {
    AbsorbTransaction(page, std::move(txn));
    return;
  }
  stats_.txn_retries.Add(txn.requester);
  loop_->Trace(TraceCategory::kFault, "dsm_txn_retry",
               "node=" + std::to_string(txn.requester) + " page=" + std::to_string(page) +
                   " attempt=" + std::to_string(txn.attempts));
  ReclaimDeadPeers(page);
  RepairPage(page);
  // Any fast-path routing from the original dispatch is void after a failed
  // round: the retry re-executes against the repaired directory state.
  txn.via = kInvalidNode;
  txn.via_replica = false;
  ExecuteTransaction(page, std::move(txn));
}

void DsmEngine::AbsorbTransaction(PageNum page, Transaction txn) {
  stats_.txn_absorbed.Add(txn.requester);
  loop_->Trace(TraceCategory::kFault, "dsm_txn_absorbed",
               "node=" + std::to_string(txn.requester) + " page=" + std::to_string(page));
  ReclaimDeadPeers(page);
  RepairPage(page);
  if (txn.done) {
    txn.done();
  }
  FinishTransaction(page);
}

void DsmEngine::ReclaimDeadPeers(PageNum page) {
  Leaf& leaf = EnsurePage(page);
  const uint32_t i = Index(page);
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (n == options_.home) {
      continue;  // the directory host is never reclaimed from below
    }
    if ((leaf.sharers[i] & Bit(n)) != 0 && !rpc_->NodeUp(n)) {
      SetResident(leaf, i, n, PageAccess::kNone);
      leaf.sharers[i] &= ~Bit(n);
      stats_.pages_reclaimed.Add(1);
      loop_->Trace(TraceCategory::kFault, "dsm_reclaim",
                   "dead=" + std::to_string(n) + " page=" + std::to_string(page));
    }
  }
}

void DsmEngine::RepairPage(PageNum page) {
  Leaf& leaf = EnsurePage(page);
  const uint32_t i = Index(page);
  // Drop mask bits for nodes whose residency an aborted attempt already
  // revoked (their invalidate landed but the round never committed).
  uint32_t mask = leaf.sharers[i];
  for (int n = 0; n < options_.num_nodes; ++n) {
    if ((mask & Bit(n)) != 0 && AccessOf(leaf, i, n) == PageAccess::kNone) {
      mask &= ~Bit(n);
    }
  }
  leaf.sharers[i] = mask;
  const NodeId owner = leaf.owner[i];
  if (owner == kInvalidNode || (mask & Bit(owner)) == 0) {
    // The owning copy is gone — dead owner or an abandoned transfer. The
    // directory re-homes the page; content comes from the checkpoint image
    // on the recovery path.
    leaf.owner[i] = static_cast<int16_t>(options_.home);
    leaf.sharers[i] = Bit(options_.home);
    leaf.hold_until[i] = 0;
    ResetResidency(leaf, i, options_.home);
  }
}

void DsmEngine::StartTransaction(PageNum page, Transaction txn) {
  Leaf& leaf = EnsurePage(page);
  const uint32_t i = Index(page);
  if (TestBit(leaf.busy, i)) {
    waiters_[page].push_back(std::move(txn));
    return;
  }
  SetBit(leaf.busy, i);
  ExecuteTransaction(page, std::move(txn));
}

void DsmEngine::ExecuteTransaction(PageNum page, Transaction txn) {
  // A transaction for a crashed requester is absorbed instead of executed:
  // granting residency to a dead node would strand the page there, and every
  // message toward the requester would burn a full retry budget first.
  if (!rpc_->NodeUp(txn.requester)) {
    AbsorbTransaction(page, std::move(txn));
    return;
  }
  // The access may have been satisfied while this transaction queued (another
  // vCPU on the same node faulted first).
  if (WouldHit(txn.requester, page, txn.is_write)) {
    CompleteFault(page, txn);
    FinishTransaction(page);
    return;
  }
  // Anti-ping-pong hold: let a freshly granted owner make progress before a
  // competitor takes the page away. The directory entry stays busy.
  Leaf& leaf = EnsurePage(page);
  const uint32_t i = Index(page);
  if (txn.requester != leaf.owner[i] && loop_->now() < leaf.hold_until[i]) {
    loop_->ScheduleAt(leaf.hold_until[i], [this, page, txn = std::move(txn)]() mutable {
      ExecuteTransaction(page, std::move(txn));
    });
    return;
  }
  if (!txn.is_write) {
    RunReadProtocol(page, std::move(txn));
    return;
  }
  if (options_.contextual_dsm && ClassOf(page) == PageClass::kPageTable) {
    RunPageTablePiggyback(page, std::move(txn));
    return;
  }
  RunWriteProtocol(page, std::move(txn));
}

void DsmEngine::FinishTransaction(PageNum page) {
  Leaf& leaf = EnsurePage(page);
  const uint32_t i = Index(page);
  FV_CHECK(TestBit(leaf.busy, i));
  auto wit = waiters_.find(page);
  if (wit == waiters_.end() || wit->second.empty()) {
    if (wit != waiters_.end()) {
      waiters_.erase(wit);
    }
    ClearBit(leaf.busy, i);
    return;
  }
  Transaction next = std::move(wit->second.front());
  wit->second.pop_front();
  if (wit->second.empty()) {
    waiters_.erase(wit);
  }
  // Dispatch asynchronously to bound stack depth under heavy contention.
  loop_->ScheduleAfter(0, [this, page, next = std::move(next)]() mutable {
    ExecuteTransaction(page, std::move(next));
  });
}

void DsmEngine::CompleteFault(PageNum page, const Transaction& txn) {
  loop_->Trace(TraceCategory::kDsm, "fault_resolved",
               "node=" + std::to_string(txn.requester) + " page=" + std::to_string(page) +
                   " latency_us=" + std::to_string(ToMicros(loop_->now() - txn.start_time)));
  stats_.fault_latency_ns.Record(static_cast<double>(loop_->now() - txn.start_time));
  if (txn.done) {
    txn.done();
  }
}

void DsmEngine::RunReadProtocol(PageNum page, Transaction txn) {
  Leaf& leaf = EnsurePage(page);
  const uint32_t pi = Index(page);
  const NodeId requester = txn.requester;
  const NodeId owner = leaf.owner[pi];
  FV_CHECK_NE(owner, kInvalidNode);
  FV_CHECK_NE(owner, requester);  // owner always holds >= read; would have hit

  // Resolve fast-path routing: the request may already sit at the predicted
  // owner or at a chosen read replica instead of at the home.
  NodeId server = owner;
  bool direct = false;       // the request is already at `server`; no forward
  bool notify_home = false;  // hinted serve: the home learns asynchronously
  if (txn.via != kInvalidNode) {
    const NodeId via = txn.via;
    const bool via_replica = txn.via_replica;
    txn.via = kInvalidNode;
    txn.via_replica = false;
    if (via_replica && via != requester && AccessOf(leaf, pi, via) != PageAccess::kNone) {
      // Read-mostly replication: any live replica serves; the directory
      // never hears about this fault.
      server = via;
      direct = true;
      stats_.replica_reads.Add(1);
    } else if (!via_replica && via == owner) {
      // Correct owner prediction: serve right here; the home is told off
      // the critical path.
      direct = true;
      notify_home = true;
      stats_.hint_hits.Add(1);
    } else {
      // Stale prediction (ownership moved, or the replica lost its copy
      // while the request was in flight): forward to the home — exactly
      // Popcorn's stale-hint forwarding path — and rejoin the normal
      // protocol there.
      if (!via_replica) {
        stats_.hint_stale.Add(1);
      }
      auto txp = std::make_shared<Transaction>(std::move(txn));
      SendProto(via, options_.home, MsgKind::kControl, kMsgHeaderBytes,
                [this, page, txp]() mutable { RunReadProtocol(page, std::move(*txp)); },
                [this, page, txp]() { HandleTxnSendFailure(page, std::move(*txp)); });
      return;
    }
  }

  stats_.page_transfers.Add(1);

  // Sequential read prefetch: ship idle same-owner follower pages on the
  // same reply. Selected now; granted together with the main page. The
  // adaptive stream detector can widen the region past the static depth —
  // only when the owner itself serves (a replica holds just the pages it
  // happens to share, so replica serves stay single-page).
  int prefetch_limit = options_.read_prefetch_pages;
  if (options_.adaptive_granularity && server == owner) {
    prefetch_limit = std::max(prefetch_limit, StreamRegionPages(leaf, pi, requester) - 1);
  }
  std::vector<PageNum> prefetch;
  if (server == owner) {
    for (int k = 1; k <= prefetch_limit; ++k) {
      const PageNum next = page + static_cast<PageNum>(k);
      const Leaf* nl = FindLeaf(next);
      const uint32_t ni = Index(next);
      if (nl == nullptr || !TestBit(nl->known, ni) || TestBit(nl->busy, ni) ||
          nl->owner[ni] != owner || (nl->sharers[ni] & Bit(requester)) != 0 ||
          ClassOf(next) != PageClass::kGuestPrivate) {
        break;  // only a contiguous same-owner run is worth piggybacking
      }
      prefetch.push_back(next);
    }
  }
  if (prefetch.size() > static_cast<size_t>(options_.read_prefetch_pages)) {
    stats_.region_transfers.Add(1);
  }

  // Wire size of the grant: header + (possibly compressed or delta-diffed)
  // payload per page. With --dsm-compress off this is exactly the baseline
  // header + 4 KiB per page.
  uint64_t reply_bytes = kMsgHeaderBytes + TransferPayloadBytes(page, requester, kPageBytes);
  for (const PageNum p : prefetch) {
    reply_bytes += TransferPayloadBytes(p, requester, kPageBytes);
  }
  auto txp = std::make_shared<Transaction>(std::move(txn));
  // Fires when the fabric abandons a hop of this round (dead or partitioned
  // peer after the full retransmit budget). Exactly one of {hop failure,
  // final grant} consumes the transaction.
  auto on_fail = [this, page, txp]() { HandleTxnSendFailure(page, std::move(*txp)); };
  auto deliver = [this, page, requester, owner, server, notify_home,
                  prefetch = std::move(prefetch), reply_bytes, txp, on_fail]() mutable {
    // The serving node downgrades any writable copy it holds (single-writer
    // protocol) and ships the pages.
    Leaf& l = EnsurePage(page);
    if (AccessOf(l, Index(page), server) == PageAccess::kWrite) {
      SetResident(l, Index(page), server, PageAccess::kRead);
    }
    for (const PageNum p : prefetch) {
      Leaf& pl = EnsurePage(p);
      if (AccessOf(pl, Index(p), server) == PageAccess::kWrite) {
        SetResident(pl, Index(p), server, PageAccess::kRead);
      }
    }
    if (notify_home) {
      // The hinted serve bypassed the directory; the home hears about the
      // new sharer asynchronously. The simulator's directory state is
      // centralized, so the notify is pure (accounted) traffic and losing
      // it under a fault plan is harmless — the real protocol makes it
      // idempotent for the same reason a duplicate grant is.
      RpcLayer::CallOpts nopts;
      nopts.receiver_delay = HandlerCost();
      nopts.account = &proto_accounting_;
      rpc_->Notify(server, options_.home, MsgKind::kDsmOwnerNotify, kMsgHeaderBytes,
                   std::move(nopts));
    }
    SendProto(server, requester, MsgKind::kDsmPageData, reply_bytes,
              [this, page, requester, owner, prefetch = std::move(prefetch), txp]() mutable {
                loop_->ScheduleAfter(
                    costs_->dsm_map_page,
                    [this, page, requester, owner, prefetch = std::move(prefetch),
                     txp]() mutable {
                      Leaf& dir = EnsurePage(page);
                      dir.sharers[Index(page)] |= Bit(requester);
                      SetResident(dir, Index(page), requester, PageAccess::kRead);
                      // Hint refresh: every grant piggybacks the current
                      // owner (no-op unless owner_hints).
                      SetHint(requester, page, dir.owner[Index(page)]);
                      for (const PageNum p : prefetch) {
                        // Skip any page a racing transaction touched while
                        // the reply was in flight (stale speculative data).
                        Leaf& pdir = EnsurePage(p);
                        const uint32_t pj = Index(p);
                        if (TestBit(pdir.busy, pj) || pdir.owner[pj] != owner ||
                            AccessOf(pdir, pj, owner) != PageAccess::kRead) {
                          continue;
                        }
                        pdir.sharers[pj] |= Bit(requester);
                        SetResident(pdir, pj, requester, PageAccess::kRead);
                        SetHint(requester, p, owner);
                        stats_.prefetched_pages.Add(1);
                      }
                      CompleteFault(page, *txp);
                      FinishTransaction(page);
                    });
              },
              on_fail);
  };

  if (direct || server == options_.home) {
    deliver();
  } else {
    // Home forwards the request to the current owner.
    SendProto(options_.home, server, MsgKind::kControl, kMsgHeaderBytes, std::move(deliver),
              std::move(on_fail));
  }
}

void DsmEngine::RunWriteProtocol(PageNum page, Transaction txn) {
  Leaf& leaf = EnsurePage(page);
  const uint32_t pi = Index(page);
  const NodeId requester = txn.requester;
  const NodeId owner = leaf.owner[pi];
  FV_CHECK_NE(owner, kInvalidNode);

  const bool upgrade = AccessOf(leaf, pi, requester) == PageAccess::kRead;

  if (txn.via != kInvalidNode) {
    const NodeId via = txn.via;
    txn.via = kInvalidNode;
    txn.via_replica = false;
    const bool sole_holder =
        via == owner && (leaf.sharers[pi] & ~(Bit(via) | Bit(requester))) == 0;
    if (!sole_holder) {
      // Wrong prediction, or other sharers exist: only the home can run the
      // invalidation round. Forward the request — the stale-hint path.
      stats_.hint_stale.Add(1);
      auto txp = std::make_shared<Transaction>(std::move(txn));
      SendProto(via, options_.home, MsgKind::kControl, kMsgHeaderBytes,
                [this, page, txp]() mutable { RunWriteProtocol(page, std::move(*txp)); },
                [this, page, txp]() { HandleTxnSendFailure(page, std::move(*txp)); });
      return;
    }
    // The predicted owner holds the only other copy: it invalidates itself,
    // ships page + ownership straight to the requester, and notifies the
    // home asynchronously — the whole directory round disappears.
    stats_.hint_hits.Add(1);
    SetResident(leaf, pi, via, PageAccess::kNone);
    RpcLayer::CallOpts nopts;
    nopts.receiver_delay = HandlerCost();
    nopts.account = &proto_accounting_;
    rpc_->Notify(via, options_.home, MsgKind::kDsmOwnerNotify, kMsgHeaderBytes,
                 std::move(nopts));
    stats_.page_transfers.Add(upgrade ? 0 : 1);
    const uint64_t ship_bytes =
        upgrade ? kMsgHeaderBytes
                : kMsgHeaderBytes + TransferPayloadBytes(page, requester, kPageBytes);
    auto txp = std::make_shared<Transaction>(std::move(txn));
    SendProto(via, requester, upgrade ? MsgKind::kDsmAck : MsgKind::kDsmPageData, ship_bytes,
              [this, page, requester, txp]() mutable {
                loop_->ScheduleAfter(
                    costs_->dsm_map_page, [this, page, requester, txp]() mutable {
                      Leaf& dir = EnsurePage(page);
                      const uint32_t di = Index(page);
                      const TimeNs hold = OwnershipHold(dir, di, dir.owner[di] != requester);
                      dir.owner[di] = static_cast<int16_t>(requester);
                      dir.sharers[di] = Bit(requester);
                      dir.hold_until[di] = loop_->now() + hold;
                      SetResident(dir, di, requester, PageAccess::kWrite);
                      BumpPageVersion(page, requester);
                      if (options_.ept_dirty_tracking) {
                        SendProto(requester, options_.home, MsgKind::kDsmAck, kMsgHeaderBytes,
                                  []() {});
                      }
                      CompleteFault(page, *txp);
                      FinishTransaction(page);
                    });
              },
              [this, page, txp]() {
                // The direct transfer never arrived: void the round. The
                // retry path reconciles the self-invalidated old owner
                // (RepairPage re-homes a page whose owning copy is gone).
                stats_.write_aborts.Add(txp->requester);
                loop_->Trace(TraceCategory::kFault, "dsm_write_abort",
                             "node=" + std::to_string(txp->requester) +
                                 " page=" + std::to_string(page));
                HandleTxnSendFailure(page, std::move(*txp));
              });
    return;
  }

  // Read-mostly epoch bump: replica reads bypass the directory, so the
  // sharer mask under-counts the copies in the field. A write invalidates
  // every live node, not just the recorded sharers (dead recorded sharers
  // still get their — retried, then reclaimed — invalidate, as baseline).
  const bool epoch_bump = IsReadMostly(leaf, page);
  std::vector<NodeId> targets;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (n == requester) {
      continue;
    }
    const bool in_mask = (leaf.sharers[pi] & Bit(n)) != 0;
    if (in_mask || (epoch_bump && rpc_->NodeUp(n))) {
      targets.push_back(n);
    }
  }

  struct WriteCtx {
    bool acks_done = false;  // every sharer acknowledged its invalidate
    bool page_pending = false;
    bool aborted = false;  // a hop failed; the round is void, the txn retried
    Transaction txn;
  };
  auto ctx = std::make_shared<WriteCtx>();
  ctx->txn = std::move(txn);
  ctx->acks_done = targets.empty();
  ctx->page_pending = !upgrade && !targets.empty();

  // A failed hop voids the whole round: committing with a missed invalidate
  // would leave a stale readable copy behind a partition. The transaction is
  // re-executed after backoff against the (idempotently re-invalidatable)
  // sharer mask. Only the first failure consumes the transaction; straggler
  // acks from the voided round find `aborted` set and fall through.
  auto abort_round = [this, page, ctx]() {
    if (ctx->aborted) {
      return;
    }
    ctx->aborted = true;
    stats_.write_aborts.Add(ctx->txn.requester);
    loop_->Trace(TraceCategory::kFault, "dsm_write_abort",
                 "node=" + std::to_string(ctx->txn.requester) + " page=" + std::to_string(page));
    HandleTxnSendFailure(page, std::move(ctx->txn));
  };

  auto maybe_finish = [this, page, requester, ctx]() {
    if (ctx->aborted || !ctx->acks_done || ctx->page_pending) {
      return;
    }
    Leaf& dir = EnsurePage(page);
    const uint32_t di = Index(page);
    const TimeNs hold = OwnershipHold(dir, di, dir.owner[di] != requester);
    dir.owner[di] = static_cast<int16_t>(requester);
    dir.sharers[di] = Bit(requester);
    dir.hold_until[di] = loop_->now() + hold;
    SetResident(dir, di, requester, PageAccess::kWrite);
    BumpPageVersion(page, requester);
    if (options_.ept_dirty_tracking) {
      // A/D-bit updates generate one extra (asynchronous) sync message.
      SendProto(requester, options_.home, MsgKind::kDsmAck, kMsgHeaderBytes, []() {});
    }
    CompleteFault(page, ctx->txn);
    FinishTransaction(page);
  };

  if (targets.empty()) {
    // Sole (or no) sharer: home grants directly.
    stats_.page_transfers.Add(upgrade ? 0 : 1);
    const uint64_t bytes =
        upgrade ? kMsgHeaderBytes
                : kMsgHeaderBytes + TransferPayloadBytes(page, requester, kPageBytes);
    const MsgKind kind = upgrade ? MsgKind::kDsmAck : MsgKind::kDsmPageData;
    SendProto(options_.home, requester, kind, bytes,
              [this, maybe_finish]() mutable { loop_->ScheduleAfter(costs_->dsm_map_page, maybe_finish); },
              abort_round);
    return;
  }

  // One invalidation round over all sharers, with the rpc layer aggregating
  // the per-target acks. In the default (uncoalesced) mode this reproduces
  // the classic N invalidate + N ack exchange event-for-event; with
  // coalesced_acks the delivery confirmations stand in for the acks.
  stats_.invalidations.Add(targets.size());
  RpcLayer::MulticastOpts mopts;
  mopts.ack_kind = MsgKind::kDsmAck;
  mopts.ack_bytes = kMsgHeaderBytes;
  mopts.receiver_delay = HandlerCost();
  mopts.ack_receiver_delay = HandlerCost();
  mopts.account = &proto_accounting_;
  mopts.on_fail = abort_round;
  rpc_->Multicast(
      options_.home, targets, MsgKind::kDsmInvalidate, kMsgHeaderBytes,
      [this, page, owner, requester, upgrade, ctx, maybe_finish, abort_round](NodeId s) mutable {
        SetResident(EnsurePage(page), Index(page), s, PageAccess::kNone);
        // Hint refresh: the invalidation names the incoming owner (no-op
        // unless owner_hints).
        SetHint(s, page, requester);
        const bool ships_page = (s == owner) && !upgrade;
        if (ships_page) {
          stats_.page_transfers.Add(1);
          SendProto(s, requester, MsgKind::kDsmPageData,
                    kMsgHeaderBytes + TransferPayloadBytes(page, requester, kPageBytes),
                    [this, ctx, maybe_finish]() mutable {
                      loop_->ScheduleAfter(costs_->dsm_map_page, [ctx, maybe_finish]() mutable {
                        ctx->page_pending = false;
                        maybe_finish();
                      });
                    },
                    abort_round);
        }
      },
      [ctx, maybe_finish]() mutable {
        ctx->acks_done = true;
        maybe_finish();
      },
      std::move(mopts));
}

void DsmEngine::RunPageTablePiggyback(PageNum page, Transaction txn) {
  // Contextual DSM: the PTE delta rides on the TLB-shootdown interrupt the
  // guest sends anyway. No invalidation round, no full-page transfer; sharers
  // keep their (delta-updated) replicas.
  Leaf& leaf = EnsurePage(page);
  const uint32_t pi = Index(page);
  const NodeId requester = txn.requester;

  for (int n = 0; n < options_.num_nodes; ++n) {
    if (n != requester && (leaf.sharers[pi] & Bit(n)) != 0) {
      // Deltas are idempotent and a dead sharer needs none; losses are fine.
      SendProto(options_.home, n, MsgKind::kTlbShootdown, kPteDeltaBytes, []() {});
    }
  }

  auto txp = std::make_shared<Transaction>(std::move(txn));
  SendProto(
      options_.home, requester, MsgKind::kDsmAck, kMsgHeaderBytes,
      [this, page, requester, txp]() mutable {
        Leaf& dir = EnsurePage(page);
        const uint32_t di = Index(page);
        dir.owner[di] = static_cast<int16_t>(requester);
        dir.sharers[di] |= Bit(requester);
        dir.hold_until[di] = loop_->now() + costs_->dsm_ownership_hold;
        SetResident(dir, di, requester, PageAccess::kWrite);
        CompleteFault(page, *txp);
        FinishTransaction(page);
      },
      [this, page, txp]() { HandleTxnSendFailure(page, std::move(*txp)); });
}

uint64_t DsmEngine::CheckInvariants() const {
  uint64_t checked = 0;
  for (size_t li = 0; li < leaves_.size(); ++li) {
    const Leaf* leaf = leaves_[li].get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t w = 0; w < kLeafWords; ++w) {
      // Transient protocol state; only quiescent pages are checked.
      uint64_t bits = leaf->known[w] & ~leaf->busy[w];
      while (bits != 0) {
        const uint32_t i = w * 64 + static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const PageNum page = (static_cast<PageNum>(li) << kLeafBits) | i;
        ++checked;
        const NodeId owner = leaf->owner[i];
        FV_CHECK_NE(owner, kInvalidNode);
        FV_CHECK((leaf->sharers[i] & Bit(owner)) != 0);
        const PageClass cls = ClassOf(page);
        // Delta-replicated classes (contextual DSM): page-table pages receive
        // piggybacked updates in place, so several nodes may legitimately hold
        // writable replicas; the same goes for bypassed IO rings.
        const bool relaxed = cls == PageClass::kPageTable || cls == PageClass::kIoRing;
        int writers = 0;
        for (int n = 0; n < options_.num_nodes; ++n) {
          const PageAccess acc = AccessOf(*leaf, i, n);
          const bool in_mask = (leaf->sharers[i] & Bit(n)) != 0;
          if (acc == PageAccess::kNone) {
            FV_CHECK(!in_mask);
            continue;
          }
          FV_CHECK(in_mask);
          if (acc == PageAccess::kWrite) {
            ++writers;
            if (!relaxed) {
              FV_CHECK_EQ(n, owner);
            }
          }
        }
        if (!relaxed) {
          FV_CHECK_LE(writers, 1);
          if (writers == 1) {
            // Strict classes: a writer excludes all other copies.
            FV_CHECK_EQ(leaf->sharers[i], Bit(owner));
          }
        }
      }
    }
  }
  return checked;
}

// Radix leaves go to the wire as raw native-endian array images: snapshots
// are same-machine artifacts (save on one run, load on another run of the
// same build), and the bulk arrays dominate the stream. The busy bitmaps are
// never written — the quiesce check pins them to zero.
void DsmEngine::SaveState(SnapshotWriter* w) const {
  // Quiesce check: a transaction in flight holds a busy bit and owns a
  // continuation closure no byte stream can hold. Callers snapshot only at
  // drained-queue boundaries, so this is a programming error, not input.
  FV_CHECK(waiters_.empty());

  w->BeginSection("dsm.engine");
  w->U32(static_cast<uint32_t>(options_.num_nodes));
  w->U32(static_cast<uint32_t>(options_.home));
  w->U8(options_.owner_hints ? 1 : 0);
  w->U8(options_.compress ? 1 : 0);
  w->U64(known_pages_);

  w->U32(static_cast<uint32_t>(node_faults_.size()));
  for (const Counter& c : node_faults_) {
    SaveCounter(w, c);
  }

  w->U64(class_ranges_.size());
  for (const auto& [start, range] : class_ranges_) {
    w->U64(start);
    w->U64(range.first);
    w->U8(static_cast<uint8_t>(range.second));
  }

  w->U64(leaves_.size());
  uint64_t populated = 0;
  for (const auto& leaf : leaves_) {
    populated += leaf != nullptr ? 1 : 0;
  }
  w->U64(populated);
  for (size_t li = 0; li < leaves_.size(); ++li) {
    const Leaf* leaf = leaves_[li].get();
    if (leaf == nullptr) {
      continue;
    }
    for (uint32_t word = 0; word < kLeafWords; ++word) {
      FV_CHECK_EQ(leaf->busy[word], 0u);
    }
    w->U64(li);
    w->Bytes(leaf->owner.data(), sizeof(leaf->owner));
    w->Bytes(leaf->sharers.data(), sizeof(leaf->sharers));
    w->Bytes(leaf->hold_until.data(), sizeof(leaf->hold_until));
    w->Bytes(leaf->known, sizeof(leaf->known));
    w->Bytes(leaf->present, sizeof(leaf->present));
    w->Bytes(leaf->writable, sizeof(leaf->writable));
    w->Bytes(leaf->dirty, sizeof(leaf->dirty));
    w->U32(leaf->rm_reads);
    w->U32(leaf->rm_writes);
    w->U8(leaf->rm_promoted ? 1 : 0);
    w->Bytes(leaf->hold_boost.data(), sizeof(leaf->hold_boost));
    w->Bytes(leaf->stream_next.data(), sizeof(leaf->stream_next));
    w->Bytes(leaf->stream_run.data(), sizeof(leaf->stream_run));
  }

  w->U32(static_cast<uint32_t>(hints_.size()));
  for (const auto& per_node : hints_) {
    w->U64(per_node.size());
    uint64_t filled = 0;
    for (const auto& h : per_node) {
      filled += h != nullptr ? 1 : 0;
    }
    w->U64(filled);
    for (size_t li = 0; li < per_node.size(); ++li) {
      if (per_node[li] == nullptr) {
        continue;
      }
      w->U64(li);
      w->Bytes(per_node[li]->pred.data(), sizeof(per_node[li]->pred));
    }
  }

  w->U64(delta_.size());
  uint64_t delta_filled = 0;
  for (const auto& d : delta_) {
    delta_filled += d != nullptr ? 1 : 0;
  }
  w->U64(delta_filled);
  for (size_t li = 0; li < delta_.size(); ++li) {
    if (delta_[li] == nullptr) {
      continue;
    }
    w->U64(li);
    w->Bytes(delta_[li]->version.data(), sizeof(delta_[li]->version));
    w->Bytes(delta_[li]->last.data(), sizeof(delta_[li]->last));
  }

  SaveCounter(w, stats_.read_faults);
  SaveCounter(w, stats_.write_faults);
  SaveCounter(w, stats_.invalidations);
  SaveCounter(w, stats_.page_transfers);
  SaveCounter(w, stats_.prefetched_pages);
  SaveCounter(w, stats_.protocol_messages);
  SaveCounter(w, stats_.protocol_bytes);
  for (const Counter& c : stats_.faults_by_class) {
    SaveCounter(w, c);
  }
  SaveSummary(w, stats_.fault_latency_ns);
  SaveCounter(w, stats_.hint_hits);
  SaveCounter(w, stats_.hint_stale);
  SaveCounter(w, stats_.replica_reads);
  SaveCounter(w, stats_.region_transfers);
  SaveCounter(w, stats_.read_mostly_promotions);
  SaveCounter(w, stats_.hold_escalations);
  SaveNodeCounterSet(w, stats_.txn_retries);
  SaveNodeCounterSet(w, stats_.txn_absorbed);
  SaveNodeCounterSet(w, stats_.write_aborts);
  SaveCounter(w, stats_.pages_reclaimed);
  SaveCounter(w, stats_.pages_promoted);
  SaveCounter(w, stats_.pages_rehomed_clean);
  SaveCounter(w, stats_.pages_lost_dirty);
  SaveCounter(w, stats_.rdma_reads);
  SaveCounter(w, stats_.compressed_transfers);
  SaveCounter(w, stats_.delta_transfers);
  SaveCounter(w, stats_.transfer_bytes_saved);
}

bool DsmEngine::LoadState(SnapshotReader* r) {
  if (!r->Section("dsm.engine")) {
    return false;
  }
  const uint32_t num_nodes = r->U32();
  const uint32_t home = r->U32();
  const bool had_hints = r->U8() != 0;
  const bool had_compress = r->U8() != 0;
  if (!r->ok()) {
    return false;
  }
  if (num_nodes != static_cast<uint32_t>(options_.num_nodes) ||
      home != static_cast<uint32_t>(options_.home) || had_hints != options_.owner_hints ||
      had_compress != options_.compress) {
    r->FailExternal("dsm.engine: snapshot was taken under a different engine configuration");
    return false;
  }

  // Stage everything; commit only on a fully clean read.
  const uint64_t staged_known_pages = r->U64();

  std::vector<Counter> staged_faults;
  const uint32_t fault_nodes = r->U32();
  if (!r->ok() || fault_nodes != num_nodes) {
    r->FailExternal("dsm.engine: per-node fault counter width mismatch");
    return false;
  }
  staged_faults.resize(fault_nodes);
  for (uint32_t n = 0; n < fault_nodes; ++n) {
    LoadCounter(r, &staged_faults[n]);
  }

  std::map<PageNum, std::pair<PageNum, PageClass>> staged_ranges;
  const uint64_t num_ranges = r->U64();
  for (uint64_t i = 0; r->ok() && i < num_ranges; ++i) {
    const PageNum start = r->U64();
    const PageNum end = r->U64();
    const uint8_t cls = r->U8();
    if (r->ok() && (cls >= static_cast<uint8_t>(PageClass::kCount) || end <= start)) {
      r->FailExternal("dsm.engine: malformed class range");
      return false;
    }
    staged_ranges[start] = {end, static_cast<PageClass>(cls)};
  }

  constexpr uint64_t kMaxLeaves = kMaxPages >> kLeafBits;
  const uint64_t root_size = r->U64();
  const uint64_t populated = r->U64();
  if (!r->ok()) {
    return false;
  }
  if (root_size > kMaxLeaves || populated > root_size) {
    r->FailExternal("dsm.engine: leaf table shape exceeds the guest address space");
    return false;
  }
  std::vector<std::unique_ptr<Leaf>> staged_leaves(static_cast<size_t>(root_size));
  uint64_t prev_index = 0;
  for (uint64_t i = 0; r->ok() && i < populated; ++i) {
    const uint64_t li = r->U64();
    if (!r->ok()) {
      break;
    }
    if (li >= root_size || (i > 0 && li <= prev_index)) {
      r->FailExternal("dsm.engine: leaf indexes out of order");
      return false;
    }
    prev_index = li;
    auto leaf = std::make_unique<Leaf>();
    r->BytesInto(leaf->owner.data(), sizeof(leaf->owner));
    r->BytesInto(leaf->sharers.data(), sizeof(leaf->sharers));
    r->BytesInto(leaf->hold_until.data(), sizeof(leaf->hold_until));
    r->BytesInto(leaf->known, sizeof(leaf->known));
    r->BytesInto(leaf->present, sizeof(leaf->present));
    r->BytesInto(leaf->writable, sizeof(leaf->writable));
    r->BytesInto(leaf->dirty, sizeof(leaf->dirty));
    leaf->rm_reads = r->U32();
    leaf->rm_writes = r->U32();
    leaf->rm_promoted = r->U8() != 0;
    r->BytesInto(leaf->hold_boost.data(), sizeof(leaf->hold_boost));
    r->BytesInto(leaf->stream_next.data(), sizeof(leaf->stream_next));
    r->BytesInto(leaf->stream_run.data(), sizeof(leaf->stream_run));
    staged_leaves[static_cast<size_t>(li)] = std::move(leaf);
  }

  std::vector<std::vector<std::unique_ptr<HintLeaf>>> staged_hints;
  const uint32_t hint_nodes = r->U32();
  if (!r->ok()) {
    return false;
  }
  if (hint_nodes != (had_hints ? num_nodes : 0)) {
    r->FailExternal("dsm.engine: hint table width mismatch");
    return false;
  }
  staged_hints.resize(hint_nodes);
  for (uint32_t n = 0; r->ok() && n < hint_nodes; ++n) {
    const uint64_t vec_size = r->U64();
    const uint64_t filled = r->U64();
    if (!r->ok()) {
      return false;
    }
    if (vec_size > kMaxLeaves || filled > vec_size) {
      r->FailExternal("dsm.engine: hint table shape exceeds the guest address space");
      return false;
    }
    staged_hints[n].resize(static_cast<size_t>(vec_size));
    uint64_t prev = 0;
    for (uint64_t i = 0; r->ok() && i < filled; ++i) {
      const uint64_t li = r->U64();
      if (!r->ok()) {
        break;
      }
      if (li >= vec_size || (i > 0 && li <= prev)) {
        r->FailExternal("dsm.engine: hint leaf indexes out of order");
        return false;
      }
      prev = li;
      auto h = std::make_unique<HintLeaf>();
      r->BytesInto(h->pred.data(), sizeof(h->pred));
      staged_hints[n][static_cast<size_t>(li)] = std::move(h);
    }
  }

  std::vector<std::unique_ptr<DeltaLeaf>> staged_delta;
  const uint64_t delta_size = r->U64();
  const uint64_t delta_filled = r->U64();
  if (!r->ok()) {
    return false;
  }
  if (delta_size > kMaxLeaves || delta_filled > delta_size) {
    r->FailExternal("dsm.engine: version table shape exceeds the guest address space");
    return false;
  }
  staged_delta.resize(static_cast<size_t>(delta_size));
  uint64_t delta_prev = 0;
  for (uint64_t i = 0; r->ok() && i < delta_filled; ++i) {
    const uint64_t li = r->U64();
    if (!r->ok()) {
      break;
    }
    if (li >= delta_size || (i > 0 && li <= delta_prev)) {
      r->FailExternal("dsm.engine: version leaf indexes out of order");
      return false;
    }
    delta_prev = li;
    auto d = std::make_unique<DeltaLeaf>();
    r->BytesInto(d->version.data(), sizeof(d->version));
    r->BytesInto(d->last.data(), sizeof(d->last));
    staged_delta[static_cast<size_t>(li)] = std::move(d);
  }

  DsmStats staged_stats;
  staged_stats.txn_retries.Init(options_.num_nodes);
  staged_stats.txn_absorbed.Init(options_.num_nodes);
  staged_stats.write_aborts.Init(options_.num_nodes);
  LoadCounter(r, &staged_stats.read_faults);
  LoadCounter(r, &staged_stats.write_faults);
  LoadCounter(r, &staged_stats.invalidations);
  LoadCounter(r, &staged_stats.page_transfers);
  LoadCounter(r, &staged_stats.prefetched_pages);
  LoadCounter(r, &staged_stats.protocol_messages);
  LoadCounter(r, &staged_stats.protocol_bytes);
  for (Counter& c : staged_stats.faults_by_class) {
    LoadCounter(r, &c);
  }
  LoadSummary(r, &staged_stats.fault_latency_ns);
  LoadCounter(r, &staged_stats.hint_hits);
  LoadCounter(r, &staged_stats.hint_stale);
  LoadCounter(r, &staged_stats.replica_reads);
  LoadCounter(r, &staged_stats.region_transfers);
  LoadCounter(r, &staged_stats.read_mostly_promotions);
  LoadCounter(r, &staged_stats.hold_escalations);
  LoadNodeCounterSet(r, &staged_stats.txn_retries);
  LoadNodeCounterSet(r, &staged_stats.txn_absorbed);
  LoadNodeCounterSet(r, &staged_stats.write_aborts);
  LoadCounter(r, &staged_stats.pages_reclaimed);
  LoadCounter(r, &staged_stats.pages_promoted);
  LoadCounter(r, &staged_stats.pages_rehomed_clean);
  LoadCounter(r, &staged_stats.pages_lost_dirty);
  LoadCounter(r, &staged_stats.rdma_reads);
  LoadCounter(r, &staged_stats.compressed_transfers);
  LoadCounter(r, &staged_stats.delta_transfers);
  LoadCounter(r, &staged_stats.transfer_bytes_saved);
  if (!r->ok()) {
    return false;
  }
  if (staged_stats.txn_retries.num_nodes() != options_.num_nodes ||
      staged_stats.txn_absorbed.num_nodes() != options_.num_nodes ||
      staged_stats.write_aborts.num_nodes() != options_.num_nodes) {
    r->FailExternal("dsm.engine: retry counter width mismatch");
    return false;
  }

  known_pages_ = staged_known_pages;
  node_faults_ = std::move(staged_faults);
  class_ranges_ = std::move(staged_ranges);
  leaves_ = std::move(staged_leaves);
  hints_ = std::move(staged_hints);
  delta_ = std::move(staged_delta);
  stats_ = std::move(staged_stats);
  waiters_.clear();
  return true;
}

}  // namespace fragvisor
