#include "src/mem/gpa_space.h"

#include <utility>

#include "src/sim/check.h"

namespace fragvisor {

GuestAddressSpace::GuestAddressSpace(DsmEngine* dsm, const Layout& layout,
                                     std::vector<NodeId> slice_nodes)
    : dsm_(dsm), layout_(layout), slice_nodes_(std::move(slice_nodes)) {
  FV_CHECK(dsm != nullptr);
  FV_CHECK(!slice_nodes_.empty());

  kernel_text_base_ = 0;
  kernel_shared_base_ = kernel_text_base_ + layout_.kernel_text_pages;
  page_table_base_ = kernel_shared_base_ + layout_.kernel_shared_pages;
  io_ring_base_ = page_table_base_ + layout_.page_table_pages;
  transfer_base_ = io_ring_base_ + layout_.io_ring_pages;
  transfer_next_ = transfer_base_;
  heap_base_ = transfer_base_ + layout_.transfer_pages;
  heap_next_ = heap_base_;

  dsm_->SetPageClass(kernel_text_base_, layout_.kernel_text_pages, PageClass::kReadMostly);
  dsm_->SetPageClass(kernel_shared_base_, layout_.kernel_shared_pages, PageClass::kKernelShared);
  dsm_->SetPageClass(page_table_base_, layout_.page_table_pages, PageClass::kPageTable);
  dsm_->SetPageClass(io_ring_base_, layout_.io_ring_pages, PageClass::kIoRing);

  // The boot image (kernel text + initial data) is resident at the origin.
  const NodeId home = slice_nodes_.front();
  dsm_->SeedRange(kernel_text_base_, layout_.kernel_text_pages, home);
  dsm_->SeedRange(kernel_shared_base_, layout_.kernel_shared_pages, home);
  dsm_->SeedRange(page_table_base_, layout_.page_table_pages, home);
  dsm_->SeedRange(io_ring_base_, layout_.io_ring_pages, home);
}

NodeId GuestAddressSpace::slice_node(int slice) const {
  FV_CHECK_GE(slice, 0);
  FV_CHECK_LT(slice, num_slices());
  return slice_nodes_[static_cast<size_t>(slice)];
}

PageNum GuestAddressSpace::kernel_text_page(uint64_t i) const {
  FV_CHECK_LT(i, layout_.kernel_text_pages);
  return kernel_text_base_ + i;
}

PageNum GuestAddressSpace::kernel_shared_page(uint64_t i) const {
  FV_CHECK_LT(i, layout_.kernel_shared_pages);
  return kernel_shared_base_ + i;
}

PageNum GuestAddressSpace::page_table_page(uint64_t i) const {
  FV_CHECK_LT(i, layout_.page_table_pages);
  return page_table_base_ + i;
}

PageNum GuestAddressSpace::io_ring_page(uint64_t i) const {
  FV_CHECK_LT(i, layout_.io_ring_pages);
  return io_ring_base_ + i;
}

PageNum GuestAddressSpace::AllocIoRingPages(uint64_t count) {
  FV_CHECK_LE(io_ring_next_ + count, layout_.io_ring_pages);
  const PageNum first = io_ring_base_ + io_ring_next_;
  io_ring_next_ += count;
  return first;
}

PageNum GuestAddressSpace::AllocTransferRange(uint64_t count, NodeId node) {
  FV_CHECK_GT(count, 0u);
  FV_CHECK_LE(count, layout_.transfer_pages);
  if (transfer_next_ + count > transfer_base_ + layout_.transfer_pages) {
    transfer_next_ = transfer_base_;  // recycle the arena
  }
  const PageNum first = transfer_next_;
  transfer_next_ += count;
  dsm_->SeedRange(first, count, node);
  return first;
}

PageNum GuestAddressSpace::AllocHeapPage(NodeId numa_node) {
  return AllocHeapRange(1, numa_node);
}

PageNum GuestAddressSpace::AllocHeapRange(uint64_t count, NodeId numa_node) {
  FV_CHECK_GT(count, 0u);
  FV_CHECK_LE(heap_next_ + count, heap_base_ + layout_.heap_pages);
  const PageNum first = heap_next_;
  heap_next_ += count;
  if (numa_node != kInvalidNode) {
    dsm_->SeedRange(first, count, numa_node);
  }
  return first;
}

}  // namespace fragvisor
