// Distributed shared memory engine for the guest pseudo-physical address
// space of one Aggregate VM.
//
// Protocol: directory-based single-writer/multiple-reader write-invalidate
// coherence at 4 KiB page granularity with ownership migration, in the style
// of the Popcorn Linux DSM that FragVisor builds on. The *origin* (bootstrap)
// node hosts the directory for every page — faults from the origin save a
// network hop, exactly as in the real system.
//
// Fault walk-through (requester R, home H, owner O, sharers S):
//   read  R!=H : R --req--> H --forward--> O --page--> R   (2-3 hops)
//   write R!=H : R --req--> H --inval--> each s in S\{R}; O piggybacks the
//                page on its invalidation ack straight to R; H completes when
//                all acks arrive and R has the page.
// Every message delivery pays a handler cost on the receiving host kernel
// (dsm_handler); user-space DSM implementations (GiantVM) additionally pay
// dsm_userspace_extra per handler — that single knob is most of Fig. 9.
//
// Contextual DSM (Sec. 5.1/6.1): the hypervisor knows what certain guest
// pages contain. Page-table pages piggyback their deltas on the TLB-shootdown
// interrupt the guest must send anyway, skipping the invalidation round and
// the full-page transfer.
//
// State layout: directory state (owner, sharer mask, hold timer) and per-node
// residency rights live in one two-level radix page table — a root array of
// 512-page leaves. The local-hit fast path in Access/WouldHit is two array
// indexes and a bit test; per-node access rights are packed into per-leaf
// present/writable bitmaps (one bit per page per node) instead of one hash
// entry per (node, page). Transaction waiter queues hang off a side map keyed
// by page — only contended pages ever touch it.

#ifndef FRAGVISOR_SRC_MEM_DSM_H_
#define FRAGVISOR_SRC_MEM_DSM_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/host/cost_model.h"
#include "src/net/rpc.h"
#include "src/sim/event_loop.h"
#include "src/sim/stats.h"

namespace fragvisor {

class SnapshotReader;
class SnapshotWriter;

// Guest pseudo-physical page number (GPA >> 12).
using PageNum = uint64_t;

// Local access rights a node currently holds for a page.
enum class PageAccess : uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

// What the hypervisor knows the page contains (contextual DSM).
enum class PageClass : uint8_t {
  kGuestPrivate,  // application anonymous memory
  kKernelShared,  // hot kernel data structures shared by all vCPUs
  kPageTable,     // guest page tables (piggybacked with TLB shootdowns)
  kIoRing,        // virtio TX/RX rings (bypassable)
  kReadMostly,    // kernel text, ACPI/interrupt tables
  kCount,
};

const char* PageClassName(PageClass cls);

// Aggregated DSM measurements.
struct DsmStats {
  Counter read_faults;
  Counter write_faults;
  Counter invalidations;
  Counter page_transfers;
  Counter prefetched_pages;
  Counter protocol_messages;
  Counter protocol_bytes;
  std::array<Counter, static_cast<size_t>(PageClass::kCount)> faults_by_class;
  Summary fault_latency_ns;

  // Fast-path counters (all zero unless the corresponding Options flag is
  // on). hint_hits + hint_stale equals the number of hinted dispatches: a
  // hinted request either is served directly by the predicted owner or is
  // forwarded to the home (wrong/dead prediction, or a write that needs the
  // directory's invalidation round).
  Counter hint_hits;
  Counter hint_stale;
  Counter replica_reads;        // read faults served by a replica, no directory
  Counter region_transfers;     // read replies widened beyond read_prefetch_pages
  Counter read_mostly_promotions;  // leaves promoted by the fault-history detector
  Counter hold_escalations;        // adaptive ownership-hold scale-ups

  // Transport fast-path counters (zero unless rdma_read / compress is on).
  Counter rdma_reads;            // one-sided read pulls (no remote handler)
  Counter compressed_transfers;  // page bodies shipped at a compressed size
  Counter delta_transfers;       // refetches shipped as version deltas
  Counter transfer_bytes_saved;  // wire bytes avoided vs the full-size model

  // Fault-tolerance counters (all zero unless a FaultPlan is attached to the
  // fabric). Attribution is to the transaction's requester.
  NodeCounterSet txn_retries;    // protocol attempts re-executed after a loss
  NodeCounterSet txn_absorbed;   // transactions retired without a grant: the
                                 // requester died; its vCPU refaults or fails over
  NodeCounterSet write_aborts;   // write rounds abandoned on a failed invalidate
  Counter pages_reclaimed;       // dead peers stripped from directory entries

  // Surgical recovery counters (RecoverDeadOwner).
  Counter pages_promoted;        // surviving read replica promoted to owner
  Counter pages_rehomed_clean;   // only copy died, but the ckpt image is current
  Counter pages_lost_dirty;      // only copy died AND was written since the ckpt

  uint64_t total_faults() const { return read_faults.value() + write_faults.value(); }
};

class DsmEngine {
 public:
  struct Options {
    NodeId home = 0;      // origin node: hosts the directory
    int num_nodes = 1;    // max node id + 1 (<= 32)
    bool contextual_dsm = true;
    bool userspace_dsm = false;     // GiantVM-style: pay dsm_userspace_extra per handler
    bool ept_dirty_tracking = false;  // hardware A/D bits generating extra traffic
    // Sequential read prefetch: on a read fault, the owner piggybacks up to
    // this many following pages (same owner, idle, absent at the requester)
    // onto the reply — bulk transfers amortize the protocol round trips for
    // streaming access patterns (socket copies, scans). 0 disables.
    int read_prefetch_pages = 0;

    // --- Protocol fast paths (all off by default; off is an exact
    // pass-through, proven byte-identical by the golden-trace guards) ---

    // Per-node owner-hint cache: a requester with a hint sends its fault
    // request straight to the predicted owner, who serves the page and
    // notifies the home asynchronously (kDsmOwnerNotify). A stale hint
    // forwards the request to the home, exactly Popcorn's forwarding path.
    // Hints are refreshed by piggybacking the current owner on every read
    // grant and on every invalidation delivery.
    bool owner_hints = false;
    // Read-mostly replication: pages classed kReadMostly (or promoted by the
    // per-leaf fault-history detector) serve read faults from any live
    // replica without touching the directory; writes pay an epoch-bump
    // invalidation multicast over every live node instead of just the
    // recorded sharers.
    bool read_mostly_replication = false;
    // Adaptive transfer granularity: a per-leaf sequential-stream detector
    // widens read replies into multi-page regions (generalizing
    // read_prefetch_pages), and the anti-ping-pong ownership hold scales up
    // under detected ping-pong and back down when contention clears.
    bool adaptive_granularity = false;
    // Widest region the stream detector may ship on one reply.
    int max_region_pages = 16;

    // --- Transport fast paths (off by default; off is an exact pass-through)

    // One-sided RDMA-read page pulls: a hinted or replica-directed read fault
    // posts a wire-level one-sided read against the predicted holder instead
    // of a two-sided request, eliminating the remote-CPU handler hop; the
    // requester pays the link's one_sided_setup cost up front. Only engages
    // on direct serves (the directory path still needs the home's CPU), so
    // it composes with owner_hints / read_mostly_replication.
    bool rdma_read = false;
    // Page compression + delta-diffing: every page body ships at a modeled
    // compressed size (deterministic per-page compressibility class), and a
    // refetch by a node whose cached copy is only a few versions stale ships
    // a delta instead of the full body. Pure size modeling: grants, residency
    // and results are untouched.
    bool compress = false;
    // Seed for the per-page compressibility classes.
    uint64_t compress_seed = 0xC0DEC0DEull;
  };

  DsmEngine(EventLoop* loop, RpcLayer* rpc, const CostModel* costs, const Options& options);

  DsmEngine(const DsmEngine&) = delete;
  DsmEngine& operator=(const DsmEngine&) = delete;

  NodeId home() const { return options_.home; }
  const Options& options() const { return options_; }

  // --- Address-space setup ---

  // Declares `count` pages starting at `start` resident with write access on
  // `owner` (initial population; boot-time memory image lives at the origin).
  void SeedRange(PageNum start, uint64_t count, NodeId owner);

  // Tags a page range with a content class for contextual DSM.
  void SetPageClass(PageNum start, uint64_t count, PageClass cls);

  PageClass ClassOf(PageNum page) const;

  // --- The access path ---

  // Checks an access by a vCPU currently running on `node`. Returns true on a
  // local hit (access allowed; no callback). On a coherence fault returns
  // false, starts the protocol, and calls `done` when the access can retire.
  bool Access(NodeId node, PageNum page, bool is_write, std::function<void()> done);

  // True if `node` could access the page right now without faulting.
  bool WouldHit(NodeId node, PageNum page, bool is_write) const;

  // --- Introspection (tests, checkpoint, migration) ---

  PageAccess ResidentAccess(NodeId node, PageNum page) const;
  NodeId OwnerOf(PageNum page) const;
  uint64_t known_pages() const { return known_pages_; }
  // Pages owned by `node`, in ascending page order.
  std::vector<PageNum> PagesOwnedBy(NodeId node) const;

  // Per-node accounting (for slice reports).
  uint64_t FaultsByNode(NodeId node) const;
  uint64_t ResidentPageCount(NodeId node) const;

  // Failover recovery: re-homes every quiescent page owned by `from` onto
  // `to` (their content comes from the restored checkpoint image). Pages
  // with in-flight transactions are skipped; returns the number moved.
  uint64_t ReseedOwnedBy(NodeId from, NodeId to);

  // --- Dirty-page journal + surgical partial recovery ---

  // The journal tracks, per node, which pages that node has written since the
  // last ClearDirtyJournal() (bookkeeping only: no protocol messages, no
  // timing). The failover manager clears it at every completed checkpoint, so
  // a dirty bit means "this copy's content is newer than the image".
  void ClearDirtyJournal();
  uint64_t DirtyPageCount(NodeId node) const;
  bool IsDirty(NodeId node, PageNum page) const;

  // What a dead lender's loss actually cost, page by page.
  struct PartialLossReport {
    uint64_t pages_owned = 0;       // pages the dead node owned at failure
    uint64_t promoted_sharers = 0;  // a surviving read replica became the owner
    uint64_t rehomed_clean = 0;     // no copy left; image content still valid
    uint64_t lost_dirty = 0;        // no copy left; written since the image
  };

  // Surgical repair after a single dead lender (`dead` must not be the home
  // node, whose death forces a full restore): every page the dead node owned
  // is re-owned by a surviving sharer when one exists (content preserved) or
  // re-homed onto `fallback` for restore from the checkpoint image; the dead
  // node's residency and sharer bits are stripped everywhere. Pages with
  // in-flight transactions are skipped (their retry path repairs them).
  PartialLossReport RecoverDeadOwner(NodeId dead, NodeId fallback);

  // Live memory-slice migration (Sec. 5.2 "live slice migration"): eagerly
  // pre-copies every page `from` owns to `to` in large batches over the
  // fabric, re-homing each batch on arrival (in-flight transactions make a
  // page ineligible for its batch; it stays behind for demand paging).
  // `done` receives the number of pages moved.
  void MigrateOwnedPages(NodeId from, NodeId to, std::function<void(uint64_t moved)> done);

  // Verifies directory/residency invariants; aborts on violation. Returns the
  // number of pages checked (for test assertions).
  uint64_t CheckInvariants() const;

  // --- Snapshot save/load ---

  // Serializes the complete engine state (radix tables with dirty journals,
  // owner hints, class ranges, per-node fault counters, stats) as one tagged
  // section. The engine must be quiescent: no in-flight transactions (busy
  // bits clear, waiter queues empty) — aborts otherwise, because a
  // transaction's continuation closure cannot be serialized.
  void SaveState(SnapshotWriter* w) const;

  // Restores into a freshly constructed engine with identical Options.
  // Follows the reader's soft-error discipline: on malformed input, returns
  // false with the error latched on the reader and leaves this engine
  // untouched (stage-then-commit).
  bool LoadState(SnapshotReader* r);

  const DsmStats& stats() const { return stats_; }
  DsmStats& mutable_stats() { return stats_; }

 private:
  struct Transaction {
    NodeId requester = kInvalidNode;
    bool is_write = false;
    TimeNs start_time = 0;
    int attempts = 0;  // protocol-level retries so far (fault plans only)
    // Fast-path routing: the node the request was sent to directly (predicted
    // owner or read replica) instead of the home. kInvalidNode on the normal
    // home-directed path and after any forward/retry.
    NodeId via = kInvalidNode;
    bool via_replica = false;  // via was chosen by read-mostly replication
    std::function<void()> done;
  };

  // --- Radix page table ---

  static constexpr uint32_t kLeafBits = 9;
  static constexpr uint32_t kLeafPages = 1u << kLeafBits;       // 512 pages per leaf
  static constexpr uint32_t kLeafWords = kLeafPages / 64;
  static constexpr int kMaxNodes = 32;
  static constexpr PageNum kMaxPages = PageNum{1} << 28;        // 1 TiB of guest memory

  // One radix leaf: flat directory arrays plus packed per-node residency
  // bitmaps, all indexed by the low 9 bits of the page number.
  struct Leaf {
    std::array<int16_t, kLeafPages> owner;       // -1 == kInvalidNode
    std::array<uint32_t, kLeafPages> sharers;    // directory sharer masks
    std::array<TimeNs, kLeafPages> hold_until;   // anti-ping-pong hold
    uint64_t known[kLeafWords] = {};             // page exists in the directory
    uint64_t busy[kLeafWords] = {};              // a transaction holds the entry
    uint64_t present[kMaxNodes][kLeafWords] = {};   // residency: access != none
    uint64_t writable[kMaxNodes][kLeafWords] = {};  // residency: access == write
    uint64_t dirty[kMaxNodes][kLeafWords] = {};     // written since last journal clear

    // --- Fast-path state (updated only when the matching option is on) ---
    // Read-mostly promotion detector: leaf-granularity fault history.
    uint32_t rm_reads = 0;
    uint32_t rm_writes = 0;
    bool rm_promoted = false;
    // Adaptive ownership hold: per-page doubling shift over the base hold.
    std::array<uint8_t, kLeafPages> hold_boost;
    // Sequential-stream detector: per requesting node, the leaf index the
    // next fault would hit if the stream continues, and the run length so
    // far. kStreamIdle marks "no stream in progress".
    static constexpr uint16_t kStreamIdle = 0xFFFF;
    std::array<uint16_t, kMaxNodes> stream_next;
    std::array<uint8_t, kMaxNodes> stream_run;

    Leaf() {
      owner.fill(-1);
      sharers.fill(0);
      hold_until.fill(0);
      hold_boost.fill(0);
      stream_next.fill(kStreamIdle);
      stream_run.fill(0);
    }
  };

  static uint32_t Bit(NodeId n) { return 1u << static_cast<uint32_t>(n); }
  static uint32_t Index(PageNum page) { return static_cast<uint32_t>(page) & (kLeafPages - 1); }
  static bool TestBit(const uint64_t* bm, uint32_t i) { return (bm[i >> 6] >> (i & 63)) & 1u; }
  static void SetBit(uint64_t* bm, uint32_t i) { bm[i >> 6] |= uint64_t{1} << (i & 63); }
  static void ClearBit(uint64_t* bm, uint32_t i) { bm[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  Leaf* FindLeaf(PageNum page) const {
    const size_t li = page >> kLeafBits;
    return li < leaves_.size() ? leaves_[li].get() : nullptr;
  }
  Leaf& EnsureLeaf(PageNum page);
  // Ensures the page has a directory entry (first touch seeds at the origin).
  Leaf& EnsurePage(PageNum page);

  PageAccess AccessOf(const Leaf& leaf, uint32_t i, NodeId node) const {
    const auto n = static_cast<size_t>(node);
    if (TestBit(leaf.writable[n], i)) {
      return PageAccess::kWrite;
    }
    return TestBit(leaf.present[n], i) ? PageAccess::kRead : PageAccess::kNone;
  }
  void SetResident(Leaf& leaf, uint32_t i, NodeId node, PageAccess acc);
  // Drops every node's residency except `keep`, which gets write access.
  void ResetResidency(Leaf& leaf, uint32_t i, NodeId keep);

  // Per-message handler cost on a receiving host (kernel vs user-space DSM).
  TimeNs HandlerCost() const;

  // Directory-side entry points. `txn.done` fires on the requester when the
  // access can retire.
  void StartTransaction(PageNum page, Transaction txn);
  void ExecuteTransaction(PageNum page, Transaction txn);
  void FinishTransaction(PageNum page);

  void RunReadProtocol(PageNum page, Transaction txn);
  void RunWriteProtocol(PageNum page, Transaction txn);
  void RunPageTablePiggyback(PageNum page, Transaction txn);

  // --- Fast-path machinery (inert with all Options flags off) ---

  // Owner-hint side table: one lazily allocated int16 leaf per (node, leaf).
  struct HintLeaf {
    std::array<int16_t, kLeafPages> pred;
    HintLeaf() { pred.fill(-1); }
  };
  NodeId HintFor(NodeId node, PageNum page) const;
  // Records `owner` as node's prediction for the page. No-op unless
  // owner_hints is on (keeps the off configuration allocation-identical).
  void SetHint(NodeId node, PageNum page, NodeId owner);

  // Delta-diffing side table: one lazily allocated leaf tracking each page's
  // content version (bumped per write grant) and the last version each node
  // received. Never allocated unless compress is on (keeps the off
  // configuration allocation-identical).
  struct DeltaLeaf {
    std::array<uint16_t, kLeafPages> version;
    std::array<std::array<uint16_t, kLeafPages>, kMaxNodes> last;
    DeltaLeaf() {
      version.fill(0);
      for (auto& row : last) {
        row.fill(0);
      }
    }
  };
  DeltaLeaf* DeltaFor(PageNum page) const;
  DeltaLeaf& EnsureDelta(PageNum page);
  // Advances the page's content version on a write grant to `writer` (who
  // then holds the current content). No-op unless compress is on.
  void BumpPageVersion(PageNum page, NodeId writer);
  // Modeled wire size of shipping the page body to `to`: a delta when to's
  // cached copy is only a few versions stale, the compressed body otherwise.
  // Records the transport counters and to's new cached version. `payload` is
  // returned untouched when compress is off.
  uint64_t TransferPayloadBytes(PageNum page, NodeId to, uint64_t payload);

  // True when this read dispatch may run as a one-sided RDMA pull: the
  // requester knows exactly which node to read from (hint or replica), so no
  // remote CPU needs to parse the request.
  bool RdmaEligible(MsgKind kind) const {
    return options_.rdma_read && kind == MsgKind::kDsmReadReq;
  }

  // True when read-mostly replication applies to the page: statically classed
  // kReadMostly, or its leaf was promoted by the fault-history detector.
  bool IsReadMostly(const Leaf& leaf, PageNum page) const;
  // Lowest-id live replica other than the requester, or kInvalidNode.
  NodeId PickReadReplica(NodeId requester, PageNum page) const;
  // Leaf-granularity promotion/demotion on every fault (replication only).
  void UpdateReadMostlyDetector(Leaf& leaf, bool is_write);

  // Sends a hinted/replica-directed fault request straight to `target`;
  // a fabric give-up falls back to the home-directed dispatch.
  void SendViaRequest(PageNum page, MsgKind kind, NodeId target, Transaction txn);
  // The unconditional home-directed tail of DispatchFaultRequest.
  void DispatchHomeRequest(PageNum page, MsgKind kind, Transaction txn);

  // Adaptive ownership hold for a write grant: doubles the base hold per
  // detected ping-pong takeover (capped at dsm_ownership_hold_max), decays
  // when the page stops changing hands under pressure. Reads and updates
  // leaf.hold_boost; plain dsm_ownership_hold when adaptive_granularity is
  // off.
  TimeNs OwnershipHold(Leaf& leaf, uint32_t i, bool ownership_moved);
  // Sequential-stream detector: returns how many pages (>= 1, including the
  // faulting one) this read should carry, updating the per-node stream state.
  int StreamRegionPages(Leaf& leaf, uint32_t i, NodeId node);

  // --- Fault tolerance (active only with a FaultPlan on the fabric) ---

  // Requester-side request dispatch with its own retry loop: the request has
  // not reached the directory yet, so no busy bit is held.
  void DispatchFaultRequest(PageNum page, MsgKind kind, Transaction txn);
  // A directory-side protocol hop was abandoned by the fabric. Retries the
  // transaction (with backoff) or absorbs it if the requester is dead.
  void HandleTxnSendFailure(PageNum page, Transaction txn);
  void ScheduleTxnRetry(PageNum page, Transaction txn);
  void RetryTransaction(PageNum page, Transaction txn);
  // Retires a transaction whose requester crashed: done() fires with no
  // residency granted (the vCPU refaults or is failed over), the busy bit is
  // released, waiters continue.
  void AbsorbTransaction(PageNum page, Transaction txn);
  // Strips crashed nodes from the page's sharer mask/residency.
  void ReclaimDeadPeers(PageNum page);
  // Reconciles sharer mask with residency after an aborted attempt; re-homes
  // the page if the owning copy was lost.
  void RepairPage(PageNum page);
  TimeNs RetryBackoff(int attempts) const;

  // `receiver_delay` overrides the per-message handler cost at the receiver;
  // the default (-1) charges HandlerCost(). One-sided RDMA legs pass 0: the
  // remote CPU never runs a handler for them.
  void SendProto(NodeId src, NodeId dst, MsgKind kind, uint64_t bytes, EventLoop::Callback cb,
                 EventLoop::Callback on_fail = nullptr, QosClass qos = QosClass::kLatency,
                 TimeNs receiver_delay = -1);

  void CompleteFault(PageNum page, const Transaction& txn);

  EventLoop* loop_;
  RpcLayer* rpc_;
  const CostModel* costs_;
  Options options_;

  // Radix root: leaves_[page >> kLeafBits], allocated on first touch.
  std::vector<std::unique_ptr<Leaf>> leaves_;
  uint64_t known_pages_ = 0;
  // Waiter queues for contended pages only (side table off the hot path).
  std::unordered_map<PageNum, std::deque<Transaction>> waiters_;
  // Owner-hint cache: hints_[node][page >> kLeafBits], allocated on first
  // hint write. Empty unless owner_hints is on.
  std::vector<std::vector<std::unique_ptr<HintLeaf>>> hints_;
  // Delta-diffing version cache: delta_[page >> kLeafBits], allocated on
  // first transfer. Empty unless compress is on.
  std::vector<std::unique_ptr<DeltaLeaf>> delta_;
  // Ordered class ranges: start -> (end_exclusive, class).
  std::map<PageNum, std::pair<PageNum, PageClass>> class_ranges_;
  std::vector<Counter> node_faults_;  // faults initiated by each node

  DsmStats stats_;
  // Per-send protocol accounting handed to the rpc layer (kept exactly as
  // the hand-rolled SendProto counted: once per issue, including retries).
  RpcLayer::ProtoAccounting proto_accounting_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_MEM_DSM_H_
