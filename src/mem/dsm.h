// Distributed shared memory engine for the guest pseudo-physical address
// space of one Aggregate VM.
//
// Protocol: directory-based single-writer/multiple-reader write-invalidate
// coherence at 4 KiB page granularity with ownership migration, in the style
// of the Popcorn Linux DSM that FragVisor builds on. The *origin* (bootstrap)
// node hosts the directory for every page — faults from the origin save a
// network hop, exactly as in the real system.
//
// Fault walk-through (requester R, home H, owner O, sharers S):
//   read  R!=H : R --req--> H --forward--> O --page--> R   (2-3 hops)
//   write R!=H : R --req--> H --inval--> each s in S\{R}; O piggybacks the
//                page on its invalidation ack straight to R; H completes when
//                all acks arrive and R has the page.
// Every message delivery pays a handler cost on the receiving host kernel
// (dsm_handler); user-space DSM implementations (GiantVM) additionally pay
// dsm_userspace_extra per handler — that single knob is most of Fig. 9.
//
// Contextual DSM (Sec. 5.1/6.1): the hypervisor knows what certain guest
// pages contain. Page-table pages piggyback their deltas on the TLB-shootdown
// interrupt the guest must send anyway, skipping the invalidation round and
// the full-page transfer.

#ifndef FRAGVISOR_SRC_MEM_DSM_H_
#define FRAGVISOR_SRC_MEM_DSM_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/host/cost_model.h"
#include "src/net/fabric.h"
#include "src/sim/event_loop.h"
#include "src/sim/stats.h"

namespace fragvisor {

// Guest pseudo-physical page number (GPA >> 12).
using PageNum = uint64_t;

// Local access rights a node currently holds for a page.
enum class PageAccess : uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

// What the hypervisor knows the page contains (contextual DSM).
enum class PageClass : uint8_t {
  kGuestPrivate,  // application anonymous memory
  kKernelShared,  // hot kernel data structures shared by all vCPUs
  kPageTable,     // guest page tables (piggybacked with TLB shootdowns)
  kIoRing,        // virtio TX/RX rings (bypassable)
  kReadMostly,    // kernel text, ACPI/interrupt tables
  kCount,
};

const char* PageClassName(PageClass cls);

// Aggregated DSM measurements.
struct DsmStats {
  Counter read_faults;
  Counter write_faults;
  Counter invalidations;
  Counter page_transfers;
  Counter prefetched_pages;
  Counter protocol_messages;
  Counter protocol_bytes;
  std::array<Counter, static_cast<size_t>(PageClass::kCount)> faults_by_class;
  Summary fault_latency_ns;

  uint64_t total_faults() const { return read_faults.value() + write_faults.value(); }
};

class DsmEngine {
 public:
  struct Options {
    NodeId home = 0;      // origin node: hosts the directory
    int num_nodes = 1;    // max node id + 1 (<= 32)
    bool contextual_dsm = true;
    bool userspace_dsm = false;     // GiantVM-style: pay dsm_userspace_extra per handler
    bool ept_dirty_tracking = false;  // hardware A/D bits generating extra traffic
    // Sequential read prefetch: on a read fault, the owner piggybacks up to
    // this many following pages (same owner, idle, absent at the requester)
    // onto the reply — bulk transfers amortize the protocol round trips for
    // streaming access patterns (socket copies, scans). 0 disables.
    int read_prefetch_pages = 0;
  };

  DsmEngine(EventLoop* loop, Fabric* fabric, const CostModel* costs, const Options& options);

  DsmEngine(const DsmEngine&) = delete;
  DsmEngine& operator=(const DsmEngine&) = delete;

  NodeId home() const { return options_.home; }
  const Options& options() const { return options_; }

  // --- Address-space setup ---

  // Declares `count` pages starting at `start` resident with write access on
  // `owner` (initial population; boot-time memory image lives at the origin).
  void SeedRange(PageNum start, uint64_t count, NodeId owner);

  // Tags a page range with a content class for contextual DSM.
  void SetPageClass(PageNum start, uint64_t count, PageClass cls);

  PageClass ClassOf(PageNum page) const;

  // --- The access path ---

  // Checks an access by a vCPU currently running on `node`. Returns true on a
  // local hit (access allowed; no callback). On a coherence fault returns
  // false, starts the protocol, and calls `done` when the access can retire.
  bool Access(NodeId node, PageNum page, bool is_write, std::function<void()> done);

  // True if `node` could access the page right now without faulting.
  bool WouldHit(NodeId node, PageNum page, bool is_write) const;

  // --- Introspection (tests, checkpoint, migration) ---

  PageAccess ResidentAccess(NodeId node, PageNum page) const;
  NodeId OwnerOf(PageNum page) const;
  uint64_t known_pages() const { return pages_.size(); }
  std::vector<PageNum> PagesOwnedBy(NodeId node) const;

  // Per-node accounting (for slice reports).
  uint64_t FaultsByNode(NodeId node) const;
  uint64_t ResidentPageCount(NodeId node) const;

  // Failover recovery: re-homes every quiescent page owned by `from` onto
  // `to` (their content comes from the restored checkpoint image). Pages
  // with in-flight transactions are skipped; returns the number moved.
  uint64_t ReseedOwnedBy(NodeId from, NodeId to);

  // Live memory-slice migration (Sec. 5.2 "live slice migration"): eagerly
  // pre-copies every page `from` owns to `to` in large batches over the
  // fabric, re-homing each batch on arrival (in-flight transactions make a
  // page ineligible for its batch; it stays behind for demand paging).
  // `done` receives the number of pages moved.
  void MigrateOwnedPages(NodeId from, NodeId to, std::function<void(uint64_t moved)> done);

  // Verifies directory/residency invariants; aborts on violation. Returns the
  // number of pages checked (for test assertions).
  uint64_t CheckInvariants() const;

  const DsmStats& stats() const { return stats_; }
  DsmStats& mutable_stats() { return stats_; }

 private:
  struct Transaction {
    NodeId requester = kInvalidNode;
    bool is_write = false;
    TimeNs start_time = 0;
    std::function<void()> done;
  };

  struct PageState {
    NodeId owner = kInvalidNode;
    uint32_t sharer_mask = 0;
    bool busy = false;       // a transaction holds the directory entry
    TimeNs hold_until = 0;   // anti-ping-pong: owner keeps the page until then
    std::deque<Transaction> waiters;
  };

  static uint32_t Bit(NodeId n) { return 1u << static_cast<uint32_t>(n); }

  PageState& EnsurePage(PageNum page);
  PageAccess& ResidentSlot(NodeId node, PageNum page);

  // Per-message handler cost on a receiving host (kernel vs user-space DSM).
  TimeNs HandlerCost() const;

  // Directory-side entry points. `txn.done` fires on the requester when the
  // access can retire.
  void StartTransaction(PageNum page, Transaction txn);
  void ExecuteTransaction(PageNum page, Transaction txn);
  void FinishTransaction(PageNum page);

  void RunReadProtocol(PageNum page, Transaction txn);
  void RunWriteProtocol(PageNum page, Transaction txn);
  void RunPageTablePiggyback(PageNum page, Transaction txn);

  void SendProto(NodeId src, NodeId dst, MsgKind kind, uint64_t bytes, std::function<void()> cb);

  void CompleteFault(PageNum page, const Transaction& txn);

  EventLoop* loop_;
  Fabric* fabric_;
  const CostModel* costs_;
  Options options_;

  std::unordered_map<PageNum, PageState> pages_;
  // resident_[node][page] -> access. Dense outer vector, sparse inner map.
  std::vector<std::unordered_map<PageNum, PageAccess>> resident_;
  // Ordered class ranges: start -> (end_exclusive, class).
  std::map<PageNum, std::pair<PageNum, PageClass>> class_ranges_;
  std::vector<Counter> node_faults_;  // faults initiated by each node

  DsmStats stats_;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_MEM_DSM_H_
