// Guest pseudo-physical address-space layout and page allocator.
//
// Carves the Aggregate VM's pseudo-physical space into the regions the
// contextual DSM cares about (kernel text, hot shared kernel data, page
// tables, virtio rings, heap) and provides the allocation policy lever that
// distinguishes the vanilla from the optimized guest kernel:
//
//  * vanilla guest: fresh anonymous pages are backed by the origin node (all
//    first writes from companion slices fault remotely);
//  * NUMA-aware optimized guest: each slice allocates from a local arena, so
//    first touches hit (the paper's runtime NUMA topology updates).

#ifndef FRAGVISOR_SRC_MEM_GPA_SPACE_H_
#define FRAGVISOR_SRC_MEM_GPA_SPACE_H_

#include <cstdint>
#include <vector>

#include "src/mem/dsm.h"

namespace fragvisor {

class GuestAddressSpace {
 public:
  struct Layout {
    uint64_t kernel_text_pages = 2048;   // 8 MiB, read-mostly
    uint64_t kernel_shared_pages = 64;   // hot shared kernel structures
    uint64_t page_table_pages = 512;
    uint64_t io_ring_pages = 64;         // virtio queue rings (one page each)
    // Circular arena for transient transfer buffers (socket payloads, IO
    // bounce buffers): recycled like real kernel socket/skb memory.
    uint64_t transfer_pages = 1 << 17;   // 512 MiB window
    uint64_t heap_pages = 1 << 20;       // 4 GiB of allocatable guest memory
  };

  // `slice_nodes[i]` is the physical node backing slice i; slice 0 is the
  // bootstrap slice (DSM home).
  GuestAddressSpace(DsmEngine* dsm, const Layout& layout, std::vector<NodeId> slice_nodes);

  GuestAddressSpace(const GuestAddressSpace&) = delete;
  GuestAddressSpace& operator=(const GuestAddressSpace&) = delete;

  const Layout& layout() const { return layout_; }
  int num_slices() const { return static_cast<int>(slice_nodes_.size()); }
  NodeId slice_node(int slice) const;

  // --- Region accessors (page numbers) ---
  PageNum kernel_text_page(uint64_t i) const;
  PageNum kernel_shared_page(uint64_t i) const;
  PageNum page_table_page(uint64_t i) const;
  PageNum io_ring_page(uint64_t i) const;

  // Reserves `count` ring pages for a device (one per queue).
  PageNum AllocIoRingPages(uint64_t count);

  // --- Heap allocation ---

  // Allocates one fresh heap page. If `numa_node` is a valid node, the page
  // is seeded resident there (NUMA-aware first touch); with kInvalidNode it
  // is origin-backed and the first remote write will fault.
  PageNum AllocHeapPage(NodeId numa_node);

  // Allocates `count` contiguous heap pages under the same policy.
  PageNum AllocHeapRange(uint64_t count, NodeId numa_node);

  // Allocates `count` transfer-buffer pages seeded resident on `node`,
  // recycling the circular arena (old buffers are overwritten, exactly like
  // kernel socket buffers). count must fit in the arena.
  PageNum AllocTransferRange(uint64_t count, NodeId node);

  uint64_t heap_pages_allocated() const { return heap_next_ - heap_base_; }
  uint64_t total_pages() const { return heap_base_ + layout_.heap_pages; }

 private:
  DsmEngine* dsm_;
  Layout layout_;
  std::vector<NodeId> slice_nodes_;

  PageNum kernel_text_base_ = 0;
  PageNum kernel_shared_base_ = 0;
  PageNum page_table_base_ = 0;
  PageNum io_ring_base_ = 0;
  PageNum transfer_base_ = 0;
  PageNum transfer_next_ = 0;
  PageNum heap_base_ = 0;
  PageNum heap_next_ = 0;
  uint64_t io_ring_next_ = 0;
};

}  // namespace fragvisor

#endif  // FRAGVISOR_SRC_MEM_GPA_SPACE_H_
