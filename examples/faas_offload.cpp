// Serverless/FaaS scenario: OpenLambda-style face-detection functions on an
// Aggregate VM, with the tmpfs root filesystem and delegated virtio-net.
// Shows the per-phase breakdown (download / extract / detect) and the DSM
// traffic that each phase generates.
//
//   ./build/examples/faas_offload

#include <cstdio>

#include "src/core/fragvisor.h"
#include "src/workload/faas.h"

using namespace fragvisor;

int main() {
  Cluster::Config cc;
  cc.num_nodes = 4;  // 3 compute nodes + the database/client node
  Cluster cluster(cc);
  const NodeId database = 3;
  for (NodeId n = 0; n < 3; ++n) {
    cluster.fabric().SetLinkParams(n, database, LinkParams::Ethernet1G());
    cluster.fabric().SetLinkParams(database, n, LinkParams::Ethernet1G());
  }

  AggregateVmConfig config;
  config.placement = DistributedPlacement(3);  // one worker vCPU per node
  config.external_node = database;
  config.blk_backend = BlkBackend::kTmpfs;  // ramdisk root fs, as in the paper
  AggregateVm vm(&cluster, config);

  FaasConfig faas;
  faas.download_bytes = 4ull << 20;
  faas.extract_bytes = 16ull << 20;
  faas.detect_compute = Millis(600);
  FaasPhaseStats stats;
  for (int v = 0; v < vm.num_vcpus(); ++v) {
    vm.SetWorkload(v, std::make_unique<FaasWorkerStream>(&vm, v, faas, &stats));
  }
  vm.Boot();
  FaasStartDownloads(vm, faas, vm.num_vcpus());
  RunUntilVmDone(cluster, vm, Seconds(600));

  std::printf("3 parallel face-detection functions, one per borrowed vCPU:\n");
  std::printf("  download: %7.1f ms (archive over the LAN, delegated virtio-net RX)\n",
              stats.download_ns.mean() / 1e6);
  std::printf("  extract:  %7.1f ms (unzip to tmpfs: DSM writes to origin-backed pages)\n",
              stats.extract_ns.mean() / 1e6);
  std::printf("  detect:   %7.1f ms (compute over a node-local working set)\n",
              stats.detect_ns.mean() / 1e6);
  std::printf("  total:    %7.1f ms\n", stats.total_ns.mean() / 1e6);

  const DsmStats& dsm = vm.dsm().stats();
  std::printf("\nDSM during the run: %llu faults, %.1f MB protocol traffic\n",
              static_cast<unsigned long long>(dsm.total_faults()),
              static_cast<double>(dsm.protocol_bytes.value()) / 1e6);
  std::printf("net device: %llu packets received, %llu delegated to remote slices\n",
              static_cast<unsigned long long>(vm.net()->stats().rx_packets.value()),
              static_cast<unsigned long long>(vm.net()->stats().delegated_rx.value()));
  return 0;
}
