// Quickstart: boot an Aggregate VM over four nodes, run a workload, and
// consolidate it onto a single node once capacity frees up.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/fragvisor.h"
#include "src/workload/npb.h"

using namespace fragvisor;

int main() {
  // A small data-center: 4 servers, 8 pCPUs each, 56 Gbps InfiniBand.
  Cluster::Config cluster_config;
  cluster_config.num_nodes = 4;
  cluster_config.pcpus_per_node = 8;
  Cluster cluster(cluster_config);

  FragVisor hypervisor(&cluster);

  // An Aggregate VM with 4 vCPUs, one borrowed from each node: the cluster
  // has no node with 4 free CPUs, but FragVisor can still provide a 4-vCPU
  // VM from the fragments.
  AggregateVmConfig vm_config;
  vm_config.name = "aggregate-demo";
  vm_config.placement = DistributedPlacement(4);
  AggregateVm& vm = hypervisor.CreateVm(vm_config);

  // Run one serial NPB CG instance per vCPU.
  const NpbProfile profile = ScaleNpb(NpbByName("CG"), 0.25);
  for (int v = 0; v < vm.num_vcpus(); ++v) {
    vm.SetWorkload(v, std::make_unique<NpbSerialStream>(&vm, v, profile, 42 + v));
  }

  vm.Boot();
  std::printf("booted %d vCPUs across %zu nodes\n", vm.num_vcpus(), vm.NodesInUse().size());

  // Let it run for a while, then pretend node 0 freed up: consolidate.
  cluster.loop().RunFor(Millis(50));
  bool consolidated = false;
  hypervisor.ConsolidateVm(vm, /*target=*/0, /*pcpus=*/{1, 2, 3},
                           [&]() { consolidated = true; });
  RunUntil(cluster, [&]() { return consolidated; }, Seconds(10));
  std::printf("consolidated onto node %d after %zu vCPU migrations (mean %.1f us each)\n",
              vm.NodesInUse()[0], static_cast<size_t>(vm.migration_latency_ns().count()),
              vm.migration_latency_ns().mean() / 1000.0);

  // Finish the workload and report.
  const TimeNs end = RunUntilVmDone(cluster, vm, Seconds(60));
  std::printf("workload finished at t=%.1f ms (all vCPUs done: %s)\n", ToMillis(end),
              vm.AllFinished() ? "yes" : "no");

  const DsmStats& dsm = vm.dsm().stats();
  std::printf("DSM: %llu faults (%llu read / %llu write), %llu page transfers, "
              "%llu protocol messages, mean fault %.1f us\n",
              static_cast<unsigned long long>(dsm.total_faults()),
              static_cast<unsigned long long>(dsm.read_faults.value()),
              static_cast<unsigned long long>(dsm.write_faults.value()),
              static_cast<unsigned long long>(dsm.page_transfers.value()),
              static_cast<unsigned long long>(dsm.protocol_messages.value()),
              dsm.fault_latency_ns.mean() / 1000.0);
  std::printf("fabric: %.2f MB on the wire\n",
              static_cast<double>(cluster.fabric().wire_bytes()) / 1e6);

  std::printf("\nVM slices after consolidation:\n");
  for (const AggregateVm::SliceReport& slice : vm.Slices()) {
    std::printf("  node%d%s: %d vCPU(s), %llu pages owned (%llu resident), %llu faults%s\n",
                slice.node, slice.bootstrap ? " (bootstrap)" : "", slice.vcpus,
                static_cast<unsigned long long>(slice.pages_owned),
                static_cast<unsigned long long>(slice.pages_resident),
                static_cast<unsigned long long>(slice.dsm_faults),
                slice.has_nic ? ", NIC" : "");
  }
  return 0;
}
