// LEMP-on-Aggregate-VM scenario (the paper's motivating IaaS workload).
//
// Deploys NGINX + PHP-FPM inside a VM and serves an ApacheBench-style client
// over a 1 GbE LAN, comparing:
//   * an Aggregate VM with one vCPU borrowed from each of 4 nodes, vs
//   * the overcommit alternative (4 vCPUs squeezed onto 1 busy pCPU).
//
//   ./build/examples/lemp_stack

#include <cstdio>

#include "src/core/fragvisor.h"
#include "src/workload/lemp.h"

using namespace fragvisor;

namespace {

double ServeWith(Platform platform, std::vector<VcpuPlacement> placement, TimeNs processing) {
  Cluster::Config cc;
  cc.num_nodes = 5;  // 4 compute nodes + LAN client
  Cluster cluster(cc);
  const NodeId client = 4;
  for (NodeId n = 0; n < 4; ++n) {
    cluster.fabric().SetLinkParams(n, client, LinkParams::Ethernet1G());
    cluster.fabric().SetLinkParams(client, n, LinkParams::Ethernet1G());
  }

  AggregateVmConfig config;
  config.platform = platform;
  config.placement = std::move(placement);
  config.external_node = client;
  AggregateVm vm(&cluster, config);

  LempConfig lemp;
  lemp.num_php_workers = 3;
  lemp.processing_time = processing;
  lemp.total_requests = 40;
  LempDeployment deployment = DeployLemp(vm, lemp);
  vm.Boot();
  deployment.client->Start();
  RunUntil(cluster, [&]() { return deployment.client->Done(); }, Seconds(600));
  *deployment.php_stop = true;
  std::printf("    mean request latency: %.0f ms\n",
              deployment.client->request_latency_ns().mean() / 1e6);
  return deployment.client->Throughput();
}

}  // namespace

int main() {
  for (const TimeNs processing : {Millis(25), Millis(250)}) {
    std::printf("PHP processing time %.0f ms:\n", ToMillis(processing));
    std::printf("  Aggregate VM (4 nodes x 1 borrowed vCPU):\n");
    const double aggregate = ServeWith(Platform::kFragVisor, DistributedPlacement(4), processing);
    std::printf("    throughput: %.1f req/s\n", aggregate);
    std::printf("  Overcommit (4 vCPUs on 1 pCPU):\n");
    const double overcommit =
        ServeWith(Platform::kFragVisor, OvercommitPlacement(0, 4, 1), processing);
    std::printf("    throughput: %.1f req/s\n", overcommit);
    std::printf("  => Aggregate VM is %.2fx the overcommit throughput\n\n",
                aggregate / overcommit);
  }
  std::printf("The crossover the paper reports: short requests favor consolidation,\n"
              "long requests favor borrowing remote CPUs.\n");
  return 0;
}
