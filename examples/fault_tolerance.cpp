// Fault tolerance scenario (Sec. 4 "Reliability"): an Aggregate VM survives
// both a degrading host (preemptive evacuation) and a dead host
// (checkpoint/restart), with a trace of what the hypervisor did.
//
//   ./build/examples/fault_tolerance

#include <cstdio>

#include "src/ckpt/failover.h"
#include "src/core/fragvisor.h"
#include "src/host/health_monitor.h"
#include "src/sim/trace.h"
#include "src/workload/npb.h"

using namespace fragvisor;

int main() {
  Cluster::Config cc;
  cc.num_nodes = 4;
  cc.pcpus_per_node = 8;
  Cluster cluster(cc);

  // Record what the DSM / migration / checkpoint machinery does.
  Tracer tracer;
  tracer.Enable(TraceCategory::kMigration | TraceCategory::kCkpt);
  cluster.loop().set_tracer(&tracer);

  HealthMonitor::Config hc;
  hc.heartbeat_interval = Millis(20);
  HealthMonitor monitor(&cluster, hc);
  monitor.StartHeartbeats(0);
  monitor.AddObserver([&](NodeId node, NodeHealth health) {
    std::printf("t=%7.1f ms  node%d is %s\n", ToMillis(cluster.loop().now()), node,
                NodeHealthName(health));
  });

  FailoverManager::Config fc;
  fc.checkpoint_interval = Millis(100);
  FailoverManager manager(&cluster, &monitor, fc);  // adds its own observer

  AggregateVmConfig config;
  config.placement = DistributedPlacement(3);
  AggregateVm vm(&cluster, config);
  const NpbProfile profile = ScaleNpb(NpbByName("CG"), 0.25);
  for (int v = 0; v < 3; ++v) {
    vm.SetWorkload(v, std::make_unique<NpbSerialStream>(&vm, v, profile, 5 + v));
  }
  vm.Boot();
  manager.Protect(&vm);

  // The platform reports node 1 degrading at 80 ms, node 2 dead at 160 ms.
  cluster.loop().ScheduleAt(Millis(80), [&]() {
    std::printf("t=   80.0 ms  MCA: correctable-error storm on node1\n");
    monitor.InjectCorrectableErrors(1, 5);
  });
  cluster.loop().ScheduleAt(Millis(160), [&]() {
    std::printf("t=  160.0 ms  node2 loses power\n");
    monitor.InjectFailure(2);
  });
  manager.set_on_recovery([&](AggregateVm*) {
    std::printf("t=%7.1f ms  VM recovered from checkpoint; vCPUs now on nodes:",
                ToMillis(cluster.loop().now()));
    for (int v = 0; v < vm.num_vcpus(); ++v) {
      std::printf(" %d", vm.VcpuNode(v));
    }
    std::printf("\n");
  });

  const TimeNs end = RunUntilVmDone(cluster, vm, Seconds(60));
  std::printf("\nworkload completed at t=%.1f ms despite one degraded and one dead node\n",
              ToMillis(end));
  std::printf("checkpoints: %llu, evacuated vCPUs: %llu, failovers: %llu, "
              "lost work replayed: %.1f ms\n",
              static_cast<unsigned long long>(manager.stats().checkpoints_taken.value()),
              static_cast<unsigned long long>(manager.stats().vcpus_evacuated.value()),
              static_cast<unsigned long long>(manager.stats().failovers.value()),
              manager.stats().lost_work_ns.mean() / 1e6);

  std::printf("\nhypervisor trace (migrations + checkpoints):\n");
  for (const TraceEvent& ev : tracer.Snapshot()) {
    std::printf("  %10.1f ms  %-10s %-22s %s\n", ToMicros(ev.time) / 1000.0,
                TraceCategoryName(ev.category), ev.event, ev.detail.c_str());
  }
  return 0;
}
