// Data-center defragmentation scenario: the full resource-borrowing story.
//
// A FragBFF scheduler receives a burst of VM requests on a fragmented
// 4-node cluster. VMs that fit nowhere whole start as Aggregate VMs over
// fragments; when capacity frees up they are consolidated by live vCPU
// migration; a distributed checkpoint protects a long-running Aggregate VM.
//
//   ./build/examples/datacenter_defrag

#include <cstdio>

#include "src/ckpt/checkpoint.h"
#include "src/core/fragvisor.h"
#include "src/sched/fragbff.h"
#include "src/workload/workload.h"

using namespace fragvisor;

int main() {
  Cluster::Config cc;
  cc.num_nodes = 4;
  cc.pcpus_per_node = 12;
  Cluster cluster(cc);
  FragVisor hypervisor(&cluster);

  FragBffScheduler::Config sc;
  sc.num_nodes = 4;
  sc.cpus_per_node = 12;
  sc.policy = SchedPolicy::kMinNodes;  // eager consolidation, for the demo
  FragBffScheduler sched(&cluster.loop(), sc);

  sched.set_on_place([&](int vm_id, const std::map<NodeId, int>& alloc) {
    std::printf("t=%5.1fs VM %-3d placed:", ToSeconds(cluster.loop().now()), vm_id);
    for (const auto& [node, count] : alloc) {
      std::printf(" node%d x%d", node, count);
    }
    std::printf("%s\n", alloc.size() > 1 ? "   <-- Aggregate VM from fragments" : "");
  });
  sched.set_on_migrate([&](int vm_id, NodeId from, NodeId to, int count) {
    std::printf("t=%5.1fs VM %-3d consolidation: %d vCPU(s) node%d -> node%d\n",
                ToSeconds(cluster.loop().now()), vm_id, count, from, to);
  });

  // Fragment the cluster, then ask for a VM that fits nowhere whole.
  sched.Submit(VmRequest{0, 10, Seconds(60), Seconds(0)});
  sched.Submit(VmRequest{1, 10, Seconds(6), Seconds(0)});
  sched.Submit(VmRequest{2, 10, Seconds(60), Seconds(0)});
  sched.Submit(VmRequest{3, 12, Seconds(60), Seconds(0)});
  sched.Submit(VmRequest{10, 4, Seconds(60), Seconds(1)});  // needs FragBFF
  cluster.loop().RunUntil(Seconds(2));

  // Attach a real Aggregate VM to request 10 and give it work.
  AggregateVmConfig config;
  config.name = "borrower";
  config.placement.clear();
  for (const auto& [node, count] : sched.AllocationOf(10)) {
    for (int i = 0; i < count; ++i) {
      config.placement.push_back(VcpuPlacement{node, i});
    }
  }
  AggregateVm& vm = hypervisor.CreateVm(config);
  for (int v = 0; v < vm.num_vcpus(); ++v) {
    vm.SetWorkload(v, std::make_unique<ScriptedStream>(
                          std::vector<Op>{Op::AllocPages(2048), Op::Compute(Seconds(20))}));
  }
  vm.Boot();

  // Periodic distributed checkpoint (fault tolerance, Sec. 6.4).
  CheckpointService checkpoints(&cluster);
  cluster.loop().ScheduleAt(Seconds(4), [&]() {
    checkpoints.CheckpointVm(vm, 0, [&](CheckpointResult r) {
      std::printf("t=%5.1fs checkpoint: %.1f MB (%llu local / %llu remote pages) in %.1f ms\n",
                  ToSeconds(cluster.loop().now()),
                  static_cast<double>(r.bytes_written) / 1e6,
                  static_cast<unsigned long long>(r.local_pages),
                  static_cast<unsigned long long>(r.remote_pages), ToMillis(r.duration));
    });
  });

  // At t=6s VM 1 departs; FragBFF consolidates VM 10 — mirror the decision on
  // the real Aggregate VM.
  cluster.loop().RunUntil(Seconds(10));
  const auto alloc = sched.AllocationOf(10);
  if (alloc.size() == 1 && vm.NodesInUse().size() > 1) {
    const NodeId target = alloc.begin()->first;
    bool done = false;
    hypervisor.ConsolidateVm(vm, target, {2, 3, 4, 5}, [&]() { done = true; });
    RunUntil(cluster, [&]() { return done; }, Seconds(30));
    std::printf("t=%5.1fs Aggregate VM consolidated on node%d; fragmentation healed\n",
                ToSeconds(cluster.loop().now()), target);
  }

  RunUntilVmDone(cluster, vm, Seconds(120));
  std::printf("t=%5.1fs workload complete; %llu vCPU migrations, mean %.1f us\n",
              ToSeconds(cluster.loop().now()),
              static_cast<unsigned long long>(vm.migration_latency_ns().count()),
              vm.migration_latency_ns().count() > 0 ? vm.migration_latency_ns().mean() / 1000.0
                                                    : 0.0);
  return 0;
}
