// fvsim — command-line driver for ad-hoc FragVisor-Sim experiments.
//
// The bench/ binaries regenerate the paper's figures with fixed parameters;
// this tool runs one configuration chosen on the command line, for quick
// exploration:
//
//   fvsim npb  --bench IS --system fragvisor --vcpus 4 [--scale 0.25]
//   fvsim lemp --system giantvm --vcpus 4 --processing-ms 100 --requests 40
//   fvsim faas --system overcommit --vcpus 3 --detect-ms 400
//   fvsim sweep --bench CG --systems fragvisor,giantvm,overcommit:1 --jobs 8
//   fvsim list
//
// Systems: fragvisor | giantvm | overcommit[:P]   (P = pCPUs, default 1)
//
// `sweep` runs the systems x vCPUs grid for one NPB benchmark; each cell is
// an independent simulation, computed on --jobs threads. Output order (and
// every byte of it) is independent of the job count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/runner.h"
#include "src/cluster/marketplace.h"
#include "src/net/capture.h"
#include "src/sim/trace.h"
#include "src/workload/dsmstorm.h"

namespace fragvisor {
namespace {

using bench::Setup;
using bench::System;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return options.count(key) > 0; }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      args.options[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.options[arg] = std::string(argv[++i]);
    } else {
      // Move-assign a temporary: GCC 12's -Wrestrict false-fires (PR105329)
      // on basic_string::operator=(const char*) at -O3.
      args.options[arg] = std::string("1");
    }
  }
  return args;
}

// Parses "fragvisor" | "giantvm" | "overcommit[:P]" into `setup`.
bool ParseSystem(const std::string& system, Setup* setup) {
  if (system == "fragvisor") {
    setup->system = System::kFragVisor;
  } else if (system == "giantvm") {
    setup->system = System::kGiantVm;
  } else if (system.rfind("overcommit", 0) == 0) {
    setup->system = System::kOvercommit;
    const size_t colon = system.find(':');
    setup->overcommit_pcpus = colon == std::string::npos
                                  ? 1
                                  : std::atoi(system.substr(colon + 1).c_str());
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> SplitList(const std::string& list) {
  std::vector<std::string> items;
  for (size_t pos = 0; pos <= list.size();) {
    const size_t comma = list.find(',', pos);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > pos) {
      items.push_back(list.substr(pos, end - pos));
    }
    pos = end + 1;
  }
  return items;
}

// Topology flags, shared by the storm and cluster commands:
//   --topology mesh|fat-tree  fabric shape (default mesh, the historical model)
//   --pod N                   fat-tree: nodes per pod (default 8)
//   --oversub R               fat-tree: core oversubscription ratio (default 1.0)
//   --planes K                fat-tree: ECMP core planes (default 4)
bool ParseTopologySpec(const Args& args, TopologyConfig* topo) {
  const std::string kind = args.Get("topology", "mesh");
  if (kind == "mesh") {
    *topo = TopologyConfig::Mesh();
  } else if (kind == "fat-tree") {
    *topo = TopologyConfig::FatTree(args.GetInt("pod", 8), args.GetDouble("oversub", 1.0),
                                    args.GetInt("planes", 4));
  } else {
    std::fprintf(stderr, "unknown --topology '%s' (mesh|fat-tree)\n", kind.c_str());
    return false;
  }
  return true;
}

// Fault-injection flags, shared by every workload command:
//   --fault-seed N        RNG seed for the plan's link-fault draws (default 1)
//   --fault-drop P        per-message drop probability on every link
//   --fault-dup P         per-message duplication probability
//   --fault-delay-us U    uniform extra delivery jitter in [0, U] us
//   --fault-crash n@ms[,n@ms...]      crash node n at t ms
//   --fault-restart n@ms[,n@ms...]    restart node n at t ms
//   --fault-partition a-b@ms-ms[,...] cut links a<->b during [from, until) ms
//   --fault-empty         attach an (empty) plan even with no faults
void ParseFaultSpec(const Args& args, Setup* setup) {
  bench::FaultSpec& f = setup->faults;
  f.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 1));
  f.drop_prob = args.GetDouble("fault-drop", 0.0);
  f.dup_prob = args.GetDouble("fault-dup", 0.0);
  f.extra_delay_max = Micros(args.GetInt("fault-delay-us", 0));
  f.attach_empty = args.Has("fault-empty");
  for (const std::string& item : SplitList(args.Get("fault-crash", ""))) {
    int node = -1;
    double ms = 0;
    if (std::sscanf(item.c_str(), "%d@%lf", &node, &ms) != 2) {
      std::fprintf(stderr, "bad --fault-crash entry '%s' (want n@ms)\n", item.c_str());
      std::exit(2);
    }
    f.crashes.push_back({node, Millis(static_cast<TimeNs>(ms))});
  }
  for (const std::string& item : SplitList(args.Get("fault-restart", ""))) {
    int node = -1;
    double ms = 0;
    if (std::sscanf(item.c_str(), "%d@%lf", &node, &ms) != 2) {
      std::fprintf(stderr, "bad --fault-restart entry '%s' (want n@ms)\n", item.c_str());
      std::exit(2);
    }
    f.restarts.push_back({node, Millis(static_cast<TimeNs>(ms))});
  }
  for (const std::string& item : SplitList(args.Get("fault-partition", ""))) {
    int a = -1;
    int b = -1;
    double from_ms = 0;
    double until_ms = 0;
    if (std::sscanf(item.c_str(), "%d-%d@%lf-%lf", &a, &b, &from_ms, &until_ms) != 4) {
      std::fprintf(stderr, "bad --fault-partition entry '%s' (want a-b@ms-ms)\n", item.c_str());
      std::exit(2);
    }
    f.partitions.push_back({a, b, Millis(static_cast<TimeNs>(from_ms)),
                            Millis(static_cast<TimeNs>(until_ms))});
  }
}

// Reliability flags, shared by every workload command:
//   --protect             health monitoring + checkpoint/restart failover
//   --detector phi|fixed  heartbeat failure detector (default fixed)
//   --partial-recovery    surgical recovery when a lender node dies
//   --ckpt-ms T           checkpoint interval (default 100 ms)
//   --heartbeat-ms T      heartbeat interval (default 20 ms)
//   --lease-ms T          lease-protect borrowed resources, T ms duration
//   --lease-renew-ms T    lease renewal interval (default T/2)
void ParseReliabilitySpec(const Args& args, Setup* setup) {
  bench::ReliabilitySpec& rel = setup->reliability;
  rel.protect = args.Has("protect");
  const std::string detector = args.Get("detector", "fixed");
  if (detector == "phi") {
    rel.detector = FailureDetector::kPhiAccrual;
  } else if (detector != "fixed") {
    std::fprintf(stderr, "unknown --detector '%s' (phi|fixed)\n", detector.c_str());
    std::exit(2);
  }
  rel.partial_recovery = args.Has("partial-recovery");
  rel.checkpoint_interval = Millis(args.GetInt("ckpt-ms", 100));
  rel.heartbeat_interval = Millis(args.GetInt("heartbeat-ms", 20));
  if (args.Has("lease-ms")) {
    rel.leases = true;
    const int lease_ms = args.GetInt("lease-ms", 200);
    rel.lease_duration = Millis(lease_ms);
    rel.lease_renew = Millis(args.GetInt("lease-renew-ms", std::max(1, lease_ms / 2)));
  }
  if ((rel.partial_recovery || args.Has("detector")) && !rel.protect) {
    std::fprintf(stderr, "--partial-recovery/--detector need --protect\n");
    std::exit(2);
  }
}

Setup MakeSetup(const Args& args) {
  Setup setup;
  setup.vcpus = args.GetInt("vcpus", 4);
  const std::string system = args.Get("system", "fragvisor");
  if (!ParseSystem(system, &setup)) {
    std::fprintf(stderr, "unknown system '%s' (fragvisor|giantvm|overcommit[:P])\n",
                 system.c_str());
    std::exit(2);
  }
  if (args.Has("vanilla-guest")) {
    setup.guest = GuestKernelConfig::Vanilla();
  }
  if (args.Has("no-multiqueue")) {
    setup.io_multiqueue = false;
  }
  if (args.Has("no-bypass")) {
    setup.io_dsm_bypass = false;
  }
  if (args.Has("no-contextual-dsm")) {
    setup.contextual_dsm = false;
  }
  if (args.Has("rpc-coalesce")) {
    setup.rpc.coalesced_acks = true;
  }
  if (args.Has("rpc-qos")) {
    setup.rpc.qos.enabled = true;
  }
  setup.threads = args.GetInt("threads", 0);
  setup.dsm_prefetch = args.GetInt("dsm-prefetch", 0);
  if (args.Has("dsm-hints")) {
    setup.dsm_owner_hints = true;
  }
  if (args.Has("dsm-replicate")) {
    setup.dsm_replicate = true;
  }
  if (args.Has("dsm-adaptive")) {
    setup.dsm_adaptive = true;
  }
  if (args.Has("dsm-rdma-read")) {
    setup.dsm_rdma_read = true;
  }
  if (args.Has("dsm-compress")) {
    setup.dsm_compress = true;
  }
  ParseFaultSpec(args, &setup);
  ParseReliabilitySpec(args, &setup);
  return setup;
}

// End-of-run traffic report: the per-kind table always prints; --msg-stats
// additionally dumps the full JSON to the given path ("-" for stdout).
void ReportMsgStats(const Args& args, const bench::MsgStatsReport& stats) {
  bench::PrintMsgStats(stats);
  if (!args.Has("msg-stats")) {
    return;
  }
  const std::string path = args.Get("msg-stats", "-");
  const std::string json = bench::MsgStatsJson(stats);
  if (path == "-" || path == "1") {
    std::fputs(json.c_str(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --msg-stats file '%s'\n", path.c_str());
    std::exit(2);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("msg stats written to %s\n", path.c_str());
}

int RunNpb(const Args& args) {
  const Setup setup = MakeSetup(args);
  const NpbProfile profile =
      ScaleNpb(NpbByName(args.Get("bench", "CG")), args.GetDouble("scale", 0.25));
  double faults = 0;
  bench::FaultReport report;
  bench::MsgStatsReport msg_stats;
  bench::ReliabilityReport reliability;
  bench::DsmFastPathReport fastpath;
  const TimeNs end = bench::RunNpbMultiProcess(setup, profile,
                                               static_cast<uint64_t>(args.GetInt("seed", 1)),
                                               &faults, &report, &msg_stats, &reliability,
                                               &fastpath);
  std::printf("%s x%d on %s: %.2f ms (%.0f DSM faults/s)\n", profile.name.c_str(), setup.vcpus,
              bench::SystemName(setup.system), ToMillis(end), faults);
  if (setup.dsm_owner_hints || setup.dsm_replicate || setup.dsm_adaptive ||
      setup.dsm_prefetch > 0 || setup.dsm_rdma_read || setup.dsm_compress) {
    bench::PrintHeader("dsm fast paths");
    bench::PrintDsmFastPathReport(fastpath);
  }
  if (setup.faults.enabled()) {
    bench::PrintFaultReport(report);
  }
  if (setup.reliability.enabled()) {
    bench::PrintHeader("recovery report");
    bench::PrintReliabilityReport(reliability);
  }
  ReportMsgStats(args, msg_stats);
  return 0;
}

int RunLempCmd(const Args& args) {
  const Setup setup = MakeSetup(args);
  LempConfig lemp;
  lemp.num_php_workers = setup.vcpus - 1;
  lemp.processing_time = Millis(args.GetInt("processing-ms", 100));
  lemp.total_requests = args.GetInt("requests", 40);
  lemp.concurrency = args.GetInt("concurrency", 10);
  double faults = 0;
  bench::MsgStatsReport msg_stats;
  const double tput = bench::RunLemp(setup, lemp, &faults, &msg_stats);
  std::printf("LEMP %d vCPUs on %s, %d ms requests: %.1f req/s (%.0f DSM faults/s)\n",
              setup.vcpus, bench::SystemName(setup.system),
              args.GetInt("processing-ms", 100), tput, faults);
  ReportMsgStats(args, msg_stats);
  return 0;
}

int RunFaasCmd(const Args& args) {
  const Setup setup = MakeSetup(args);
  FaasConfig faas;
  faas.download_bytes = static_cast<uint64_t>(args.GetInt("download-mb", 4)) << 20;
  faas.extract_bytes = static_cast<uint64_t>(args.GetInt("extract-mb", 16)) << 20;
  faas.detect_compute = Millis(args.GetInt("detect-ms", 400));
  bench::MsgStatsReport msg_stats;
  const FaasPhaseStats stats = bench::RunFaas(setup, faas, nullptr, &msg_stats);
  std::printf("OpenLambda %d workers on %s: download %.1f ms, extract %.1f ms, "
              "detect %.1f ms, total %.1f ms\n",
              setup.vcpus, bench::SystemName(setup.system), stats.download_ns.mean() / 1e6,
              stats.extract_ns.mean() / 1e6, stats.detect_ns.mean() / 1e6,
              stats.total_ns.mean() / 1e6);
  ReportMsgStats(args, msg_stats);
  return 0;
}

bool WriteBinaryFile(const std::string& path, const std::string& data, const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s file '%s'\n", what, path.c_str());
    return false;
  }
  const size_t n = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (n != data.size()) {
    std::fprintf(stderr, "short write to %s file '%s'\n", what, path.c_str());
    return false;
  }
  return true;
}

bool ReadBinaryFile(const std::string& path, std::string* data, const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s file '%s'\n", what, path.c_str());
    return false;
  }
  data->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data->append(buf, n);
  }
  std::fclose(f);
  return true;
}

// The capture file's config blob: one key=value line per StormOptions field
// plus the recording engine, so `fvsim replay` can re-run the captured
// configuration with no flags.
std::string StormConfigBlob(const StormOptions& so, int threads) {
  std::string s;
  const auto kv = [&s](const char* k, const std::string& v) {
    s += k;
    s += '=';
    s += v;
    s += '\n';
  };
  kv("workload", "storm");
  kv("nodes", std::to_string(so.num_nodes));
  kv("streams", std::to_string(so.streams_per_node));
  kv("accesses", std::to_string(so.accesses_per_stream));
  kv("pages", std::to_string(so.pages_per_node));
  kv("cache_slots", std::to_string(so.cache_slots));
  kv("remote_frac", std::to_string(so.remote_frac));
  kv("write_frac", std::to_string(so.write_frac));
  kv("think_ns", std::to_string(so.think_ns));
  kv("seed", std::to_string(so.seed));
  kv("epochs", std::to_string(so.epochs));
  kv("link_latency_ns", std::to_string(so.link.latency));
  kv("link_bps", std::to_string(so.link.bytes_per_second));
  kv("jitter_ns", std::to_string(so.latency_jitter_ns));
  kv("drop_prob", std::to_string(so.drop_prob));
  kv("dup_prob", std::to_string(so.dup_prob));
  kv("extra_delay_max", std::to_string(so.extra_delay_max));
  kv("crash_node", std::to_string(so.crash_node));
  kv("crash_at", std::to_string(so.crash_at));
  kv("restart_at", std::to_string(so.restart_at));
  kv("partition_a", std::to_string(so.partition_a));
  kv("partition_b", std::to_string(so.partition_b));
  kv("partition_from", std::to_string(so.partition_from));
  kv("partition_until", std::to_string(so.partition_until));
  // Topology keys (absent from pre-topology captures; the parser's defaults
  // reconstruct the mesh those recordings ran on).
  kv("topology", so.topology.fat_tree() ? "fat-tree" : "mesh");
  kv("pod_size", std::to_string(so.topology.pod_size));
  kv("oversub", std::to_string(so.topology.oversub));
  kv("core_planes", std::to_string(so.topology.core_planes));
  kv("threads", std::to_string(threads));
  return s;
}

bool ParseStormConfigBlob(const std::string& blob, StormOptions* so, int* threads) {
  for (size_t pos = 0; pos < blob.size();) {
    const size_t nl = blob.find('\n', pos);
    const size_t end = nl == std::string::npos ? blob.size() : nl;
    const std::string line = blob.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "malformed capture config line '%s'\n", line.c_str());
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    const auto i = [&val]() { return std::atoi(val.c_str()); };
    const auto l = [&val]() { return std::atoll(val.c_str()); };
    const auto d = [&val]() { return std::atof(val.c_str()); };
    if (key == "workload") {
      if (val != "storm") {
        std::fprintf(stderr, "capture is for workload '%s', not storm\n", val.c_str());
        return false;
      }
    } else if (key == "nodes") {
      so->num_nodes = i();
    } else if (key == "streams") {
      so->streams_per_node = i();
    } else if (key == "accesses") {
      so->accesses_per_stream = i();
    } else if (key == "pages") {
      so->pages_per_node = i();
    } else if (key == "cache_slots") {
      so->cache_slots = i();
    } else if (key == "remote_frac") {
      so->remote_frac = d();
    } else if (key == "write_frac") {
      so->write_frac = d();
    } else if (key == "think_ns") {
      so->think_ns = l();
    } else if (key == "seed") {
      so->seed = static_cast<uint64_t>(l());
    } else if (key == "epochs") {
      so->epochs = i();
    } else if (key == "link_latency_ns") {
      so->link.latency = l();
    } else if (key == "link_bps") {
      so->link.bytes_per_second = d();
    } else if (key == "jitter_ns") {
      so->latency_jitter_ns = l();
    } else if (key == "drop_prob") {
      so->drop_prob = d();
    } else if (key == "dup_prob") {
      so->dup_prob = d();
    } else if (key == "extra_delay_max") {
      so->extra_delay_max = l();
    } else if (key == "crash_node") {
      so->crash_node = i();
    } else if (key == "crash_at") {
      so->crash_at = l();
    } else if (key == "restart_at") {
      so->restart_at = l();
    } else if (key == "partition_a") {
      so->partition_a = i();
    } else if (key == "partition_b") {
      so->partition_b = i();
    } else if (key == "partition_from") {
      so->partition_from = l();
    } else if (key == "partition_until") {
      so->partition_until = l();
    } else if (key == "topology") {
      if (val == "fat-tree") {
        so->topology.kind = TopologyConfig::Kind::kFatTree;
      } else if (val == "mesh") {
        so->topology.kind = TopologyConfig::Kind::kMesh;
      } else {
        std::fprintf(stderr, "unknown capture topology '%s'\n", val.c_str());
        return false;
      }
    } else if (key == "pod_size") {
      so->topology.pod_size = i();
    } else if (key == "oversub") {
      so->topology.oversub = d();
    } else if (key == "core_planes") {
      so->topology.core_planes = i();
    } else if (key == "threads") {
      *threads = i();
    } else {
      std::fprintf(stderr, "unknown capture config key '%s'\n", key.c_str());
      return false;
    }
  }
  return true;
}

// DSM coherence storm on the parallel simulation core.
//
//   fvsim storm --threads 4                      # ParallelEventLoop, 4 workers
//   fvsim storm                                  # legacy serial EventLoop
//   fvsim storm --threads 2 --report             # + canonical determinism dump
//
// The canonical report (--report) is byte-identical across --threads values
// for a fixed configuration; pipe two runs through diff to check.
//
// Snapshots and record/replay (DESIGN.md §10):
//   fvsim storm --epochs 4 --snapshot-save s.fvsnap --snapshot-epoch 2
//   fvsim storm --epochs 4 --snapshot-load s.fvsnap        # resumes epoch 3
//   fvsim storm --capture run.fvcap                        # record deliveries
//   fvsim replay --capture run.fvcap                       # re-run and diff
int RunStormCmd(const Args& args) {
  StormOptions so;
  so.num_nodes = args.GetInt("nodes", 64);
  so.streams_per_node = args.GetInt("streams", 4);
  so.accesses_per_stream = args.GetInt("accesses", 200);
  so.pages_per_node = args.GetInt("pages", 64);
  so.cache_slots = args.GetInt("cache-slots", 16);
  so.remote_frac = args.GetDouble("remote-frac", 0.7);
  so.write_frac = args.GetDouble("write-frac", 0.3);
  so.think_ns = Nanos(args.GetInt("think-ns", 2000));
  so.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  so.latency_jitter_ns = Nanos(args.GetInt("jitter-ns", 700));
  if (!ParseTopologySpec(args, &so.topology)) {
    return 2;
  }
  so.drop_prob = args.GetDouble("fault-drop", 0.0);
  so.dup_prob = args.GetDouble("fault-dup", 0.0);
  so.extra_delay_max = Micros(args.GetInt("fault-delay-us", 0));
  const std::string crash = args.Get("fault-crash", "");
  if (!crash.empty()) {
    int node = -1;
    double ms = 0;
    if (std::sscanf(crash.c_str(), "%d@%lf", &node, &ms) != 2) {
      std::fprintf(stderr, "bad --fault-crash entry '%s' (want n@ms)\n", crash.c_str());
      return 2;
    }
    so.crash_node = node;
    so.crash_at = Millis(static_cast<TimeNs>(ms));
  }
  const std::string restart = args.Get("fault-restart", "");
  if (!restart.empty()) {
    int node = -1;
    double ms = 0;
    if (std::sscanf(restart.c_str(), "%d@%lf", &node, &ms) != 2 || node != so.crash_node) {
      std::fprintf(stderr, "bad --fault-restart entry '%s' (want n@ms, same n as crash)\n",
                   restart.c_str());
      return 2;
    }
    so.restart_at = Millis(static_cast<TimeNs>(ms));
  }
  const std::string cut = args.Get("fault-partition", "");
  if (!cut.empty()) {
    int a = -1;
    int b = -1;
    double from_ms = 0;
    double until_ms = 0;
    if (std::sscanf(cut.c_str(), "%d-%d@%lf-%lf", &a, &b, &from_ms, &until_ms) != 4) {
      std::fprintf(stderr, "bad --fault-partition entry '%s' (want a-b@ms-ms)\n", cut.c_str());
      return 2;
    }
    so.partition_a = a;
    so.partition_b = b;
    so.partition_from = Millis(static_cast<TimeNs>(from_ms));
    so.partition_until = Millis(static_cast<TimeNs>(until_ms));
  }

  so.epochs = args.GetInt("epochs", 1);

  const int threads = args.GetInt("threads", 0);
  StormRunConfig cfg;
  std::string snapshot_out;
  if (args.Has("snapshot-save")) {
    cfg.snapshot_out = &snapshot_out;
    cfg.snapshot_epoch = args.GetInt("snapshot-epoch", so.epochs);
  }
  std::string snapshot_in;
  if (args.Has("snapshot-load")) {
    if (!ReadBinaryFile(args.Get("snapshot-load", ""), &snapshot_in, "snapshot")) {
      return 2;
    }
    cfg.snapshot_in = &snapshot_in;
  }
  std::string load_error;
  cfg.error = &load_error;
  std::unique_ptr<CaptureLog> capture;
  if (args.Has("capture")) {
    capture = std::make_unique<CaptureLog>(so.num_nodes);
    cfg.capture = capture.get();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const StormResult r = RunStormEx(so, threads, cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (!load_error.empty()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", load_error.c_str());
    return 2;
  }
  if (cfg.snapshot_out != nullptr) {
    if (snapshot_out.empty()) {
      std::fprintf(stderr, "no snapshot was taken (is --snapshot-epoch within --epochs?)\n");
      return 2;
    }
    if (!WriteBinaryFile(args.Get("snapshot-save", ""), snapshot_out, "snapshot")) {
      return 2;
    }
    std::printf("snapshot (%zu bytes, epoch %d) written to %s\n", snapshot_out.size(),
                cfg.snapshot_epoch, args.Get("snapshot-save", "").c_str());
  }
  if (capture != nullptr) {
    const std::string data = capture->Serialize(StormConfigBlob(so, threads));
    if (!WriteBinaryFile(args.Get("capture", ""), data, "capture")) {
      return 2;
    }
    std::printf("capture (%llu deliveries, %zu bytes) written to %s\n",
                static_cast<unsigned long long>(capture->total_records()), data.size(),
                args.Get("capture", "").c_str());
  }

  std::printf("storm %d nodes x %d streams on %s: %.2f ms simulated, %llu events "
              "(%.0f events/s wall), digest %016llx\n",
              so.num_nodes, so.streams_per_node,
              threads > 0 ? (std::string("parallel[") + std::to_string(threads) + "]").c_str()
                          : "serial",
              ToMillis(r.finish_time), static_cast<unsigned long long>(r.events_dispatched),
              wall_s > 0 ? static_cast<double>(r.events_dispatched) / wall_s : 0.0,
              static_cast<unsigned long long>(r.state_digest));
  if (so.topology.fat_tree()) {
    std::printf("  topology fat-tree: pods of %d, oversub %.2f, %d core planes\n",
                so.topology.pod_size, so.topology.oversub, so.topology.core_planes);
  }
  std::printf("  remote reads %llu, writes %llu, cache hits %llu, invalidations %llu, "
              "failures %llu\n",
              static_cast<unsigned long long>(r.totals.remote_reads),
              static_cast<unsigned long long>(r.totals.remote_writes),
              static_cast<unsigned long long>(r.totals.cache_hits),
              static_cast<unsigned long long>(r.totals.invalidations),
              static_cast<unsigned long long>(r.totals.failures));
  if (r.used_fault_plan) {
    std::printf("  faults: %llu dropped, %llu duplicated, %llu delayed\n",
                static_cast<unsigned long long>(r.faults.messages_dropped.value()),
                static_cast<unsigned long long>(r.faults.messages_duplicated.value()),
                static_cast<unsigned long long>(r.faults.messages_delayed.value()));
  }

  if (threads > 0) {
    // Parallelism report: how the run decomposed into conservative windows.
    const ParallelEventLoop::RunStats& c = r.core;
    uint64_t part_min = ~0ull;
    uint64_t part_max = 0;
    uint64_t part_sum = 0;
    for (const uint64_t e : c.events_per_partition) {
      part_min = std::min(part_min, e);
      part_max = std::max(part_max, e);
      part_sum += e;
    }
    const double part_mean = c.events_per_partition.empty()
                                 ? 0.0
                                 : static_cast<double>(part_sum) /
                                       static_cast<double>(c.events_per_partition.size());
    std::printf("parallel core report (%d partitions, %d workers):\n",
                static_cast<int>(c.events_per_partition.size()), threads);
    std::printf("  barriers           %llu (%.1f events/window)\n",
                static_cast<unsigned long long>(c.barriers),
                c.barriers > 0 ? static_cast<double>(c.events_dispatched) /
                                     static_cast<double>(c.barriers)
                               : 0.0);
    std::printf("  horizon advance    mean %.0f ns, min %.0f, max %.0f\n",
                c.horizon_width_ns.mean(), c.horizon_width_ns.min(), c.horizon_width_ns.max());
    std::printf("  events/partition   min %llu, mean %.1f, max %llu\n",
                static_cast<unsigned long long>(part_min == ~0ull ? 0 : part_min), part_mean,
                static_cast<unsigned long long>(part_max));
    std::printf("  mailbox deliveries %llu cross-partition events\n",
                static_cast<unsigned long long>(c.mailbox_events));
    std::printf("  cross cancels      %llu routed, %llu applied, %llu late\n",
                static_cast<unsigned long long>(c.cross_cancels_routed),
                static_cast<unsigned long long>(c.cross_cancels_applied),
                static_cast<unsigned long long>(c.cross_cancels_late));
  }

  if (args.Has("report")) {
    const std::string path = args.Get("report", "-");
    const std::string report = StormReport(r);
    if (path == "-" || path == "1") {
      std::fputs(report.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write --report file '%s'\n", path.c_str());
        return 2;
      }
      std::fputs(report.c_str(), f);
      std::fclose(f);
      std::printf("storm report written to %s\n", path.c_str());
    }
  }
  return 0;
}

// Multi-tenant cluster marketplace on the parallel core (DESIGN.md §11).
//
//   fvsim cluster --nodes 64 --vms 100 --trace poisson --threads 4
//   fvsim cluster --trace flash --policy harvest --report
//
// The canonical report (--report) is byte-identical across --threads values
// for a fixed configuration. Snapshots follow the storm command's shape:
//   fvsim cluster --epochs 2 --snapshot-save s.fvsnap --snapshot-epoch 1
//   fvsim cluster --epochs 2 --snapshot-load s.fvsnap
int RunClusterCmd(const Args& args) {
  MarketplaceOptions mo;
  mo.num_nodes = args.GetInt("nodes", 64);
  mo.vcpus_per_node = args.GetInt("vcpus-per-node", 8);
  mo.mem_per_node = static_cast<uint64_t>(args.GetInt("mem-gb", 32)) << 30;
  mo.trace.vms = args.GetInt("vms", 100);
  if (!ParseArrivalKind(args.Get("trace", "poisson"), &mo.trace.kind)) {
    std::fprintf(stderr, "unknown --trace '%s' (poisson|diurnal|flash)\n",
                 args.Get("trace", "poisson").c_str());
    return 2;
  }
  mo.trace.span = Millis(args.GetInt("span-ms", 20));
  mo.trace.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  mo.trace.max_vcpus = args.GetInt("max-vcpus", 8);
  mo.trace.mem_per_vcpu = static_cast<uint64_t>(args.GetInt("mem-per-vcpu-mb", 1024)) << 20;
  mo.trace.requests_per_vcpu = static_cast<uint64_t>(args.GetInt("requests", 2000));
  mo.trace.remote_frac = args.GetDouble("remote-frac", 0.35);
  mo.policy = args.Get("policy", "fragbff");
  mo.epochs = args.GetInt("epochs", 1);
  mo.reclamation = !args.Has("no-reclaim");
  mo.think_ns = Nanos(args.GetInt("think-ns", 1000));
  mo.service_ns = Nanos(args.GetInt("service-ns", 4000));
  mo.page_service_ns = Nanos(args.GetInt("page-service-ns", 2000));
  mo.qos = args.Has("rpc-qos");
  mo.coalesced_acks = args.Has("rpc-coalesce");
  mo.latency_jitter_ns = Nanos(args.GetInt("jitter-ns", 700));
  if (!ParseTopologySpec(args, &mo.topology)) {
    return 2;
  }
  mo.rdma_read = args.Has("dsm-rdma-read");
  mo.compress = args.Has("dsm-compress");

  // Fault injection + failover (DESIGN.md §12): stochastic link faults plus
  // scheduled crash/restart/partition transitions.
  mo.faults.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 1));
  mo.faults.drop_prob = args.GetDouble("fault-drop", 0.0);
  mo.faults.dup_prob = args.GetDouble("fault-dup", 0.0);
  mo.faults.extra_delay_max = Micros(args.GetInt("fault-jitter-us", 0));
  for (const std::string& entry : SplitList(args.Get("fault-crash", ""))) {
    int node = -1;
    double ms = 0;
    if (std::sscanf(entry.c_str(), "%d@%lf", &node, &ms) != 2) {
      std::fprintf(stderr, "bad --fault-crash entry '%s' (want n@ms)\n", entry.c_str());
      return 2;
    }
    mo.faults.crashes.push_back({node, Millis(static_cast<TimeNs>(ms))});
  }
  for (const std::string& entry : SplitList(args.Get("fault-restart", ""))) {
    int node = -1;
    double ms = 0;
    if (std::sscanf(entry.c_str(), "%d@%lf", &node, &ms) != 2) {
      std::fprintf(stderr, "bad --fault-restart entry '%s' (want n@ms)\n", entry.c_str());
      return 2;
    }
    mo.faults.restarts.push_back({node, Millis(static_cast<TimeNs>(ms))});
  }
  for (const std::string& entry : SplitList(args.Get("fault-partition", ""))) {
    int a = -1;
    int b = -1;
    double from_ms = 0;
    double until_ms = 0;
    if (std::sscanf(entry.c_str(), "%d-%d@%lf-%lf", &a, &b, &from_ms, &until_ms) != 4) {
      std::fprintf(stderr, "bad --fault-partition entry '%s' (want a-b@ms-ms)\n", entry.c_str());
      return 2;
    }
    mo.faults.partitions.push_back({a, b, Millis(static_cast<TimeNs>(from_ms)),
                                    Millis(static_cast<TimeNs>(until_ms))});
  }
  const int threads = args.GetInt("threads", 1);

  MarketplaceRunConfig cfg;
  std::string snapshot_out;
  if (args.Has("snapshot-save")) {
    cfg.snapshot_out = &snapshot_out;
    cfg.snapshot_epoch = args.GetInt("snapshot-epoch", mo.epochs);
  }
  std::string snapshot_in;
  if (args.Has("snapshot-load")) {
    if (!ReadBinaryFile(args.Get("snapshot-load", ""), &snapshot_in, "snapshot")) {
      return 2;
    }
    cfg.snapshot_in = &snapshot_in;
  }
  std::string load_error;
  cfg.error = &load_error;

  const auto wall_start = std::chrono::steady_clock::now();
  const MarketplaceResult r = RunMarketplaceEx(mo, threads, cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (!load_error.empty()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", load_error.c_str());
    return 2;
  }
  if (cfg.snapshot_out != nullptr) {
    if (snapshot_out.empty()) {
      std::fprintf(stderr, "no snapshot was taken (is --snapshot-epoch within --epochs?)\n");
      return 2;
    }
    if (!WriteBinaryFile(args.Get("snapshot-save", ""), snapshot_out, "snapshot")) {
      return 2;
    }
    std::printf("snapshot (%zu bytes, wave %d) written to %s\n", snapshot_out.size(),
                cfg.snapshot_epoch, args.Get("snapshot-save", "").c_str());
  }

  std::printf("cluster %d nodes x %d vms (%s, %s): %.2f ms simulated, %llu events "
              "(%.0f events/s wall), digest %016llx\n",
              mo.num_nodes, mo.trace.vms, ArrivalKindName(mo.trace.kind), mo.policy.c_str(),
              ToMillis(r.finish_time), static_cast<unsigned long long>(r.events_dispatched),
              wall_s > 0 ? static_cast<double>(r.events_dispatched) / wall_s : 0.0,
              static_cast<unsigned long long>(r.state_digest));
  if (mo.topology.fat_tree() || mo.rdma_read || mo.compress) {
    std::printf("  transport:%s%s%s\n",
                mo.topology.fat_tree()
                    ? (std::string(" fat-tree pods=") + std::to_string(mo.topology.pod_size) +
                       " oversub=" + std::to_string(mo.topology.oversub) +
                       " planes=" + std::to_string(mo.topology.core_planes))
                          .c_str()
                    : "",
                mo.rdma_read ? " rdma-read" : "", mo.compress ? " compress" : "");
  }
  std::printf("  placement: %llu whole, %llu aggregate, %llu delayed, %llu reclaims, "
              "%llu completed\n",
              static_cast<unsigned long long>(r.placed_single),
              static_cast<unsigned long long>(r.placed_aggregate),
              static_cast<unsigned long long>(r.delayed),
              static_cast<unsigned long long>(r.reclaims),
              static_cast<unsigned long long>(r.vms_completed));
  std::printf("  requests: %llu local, %llu remote; latency p50 %.1f us, p99 %.1f us\n",
              static_cast<unsigned long long>(r.totals.local_requests),
              static_cast<unsigned long long>(r.totals.remote_requests),
              r.latency.Percentile(50) / 1e3, r.latency.Percentile(99) / 1e3);
  std::printf("  efficiency: consolidation %.3f mean / %.3f final, stranded %.1f mean "
              "slots\n",
              r.consolidation.MeanValue(),
              r.consolidation.empty() ? 0.0 : r.consolidation.points().back().second,
              r.stranded.MeanValue());
  if (r.used_fault_plan) {
    std::printf("  faults: %llu dropped, %llu duplicated, %llu delayed, %llu crashes, "
                "%llu restarts, %llu cuts, %llu heals\n",
                static_cast<unsigned long long>(r.faults.messages_dropped.value()),
                static_cast<unsigned long long>(r.faults.messages_duplicated.value()),
                static_cast<unsigned long long>(r.faults.messages_delayed.value()),
                static_cast<unsigned long long>(r.faults.node_crashes.value()),
                static_cast<unsigned long long>(r.faults.node_restarts.value()),
                static_cast<unsigned long long>(r.faults.partitions_cut.value()),
                static_cast<unsigned long long>(r.faults.partitions_healed.value()));
    std::printf("  retry: %llu retransmits, %llu timeouts, %llu send failures, "
                "%llu dups suppressed\n",
                static_cast<unsigned long long>(r.retry.retransmits.total()),
                static_cast<unsigned long long>(r.retry.timeouts.total()),
                static_cast<unsigned long long>(r.retry.send_failures.total()),
                static_cast<unsigned long long>(r.retry.dups_suppressed.total()));
    std::printf("  chaos: %llu failovers, %llu nodes died, %llu vms failed, "
                "%llu replacements, %llu degradations, %llu journal records, "
                "%llu late dones\n",
                static_cast<unsigned long long>(r.failovers),
                static_cast<unsigned long long>(r.nodes_died),
                static_cast<unsigned long long>(r.vms_failed),
                static_cast<unsigned long long>(r.lender_replacements),
                static_cast<unsigned long long>(r.lender_degradations),
                static_cast<unsigned long long>(r.journal_records),
                static_cast<unsigned long long>(r.late_dones));
    if (r.detection_ns.count() > 0) {
      std::printf("  failover: detect p50 %.1f us / p99 %.1f us",
                  r.detection_ns.Percentile(50) / 1e3, r.detection_ns.Percentile(99) / 1e3);
      if (r.recovery_ns.count() > 0) {
        std::printf(", recover p50 %.1f us / p99 %.1f us",
                    r.recovery_ns.Percentile(50) / 1e3, r.recovery_ns.Percentile(99) / 1e3);
      }
      std::printf("\n");
    }
  }

  if (args.Has("report")) {
    const std::string path = args.Get("report", "-");
    const std::string report = MarketplaceReport(r);
    if (path == "-" || path == "1") {
      std::fputs(report.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write --report file '%s'\n", path.c_str());
        return 2;
      }
      std::fputs(report.c_str(), f);
      std::fclose(f);
      std::printf("cluster report written to %s\n", path.c_str());
    }
  }
  return 0;
}

// Re-runs a captured configuration and diffs the fresh delivery stream
// against the recording, shredcap-style: exit 0 and "zero diffs" when the
// fabric commits byte-identical deliveries, otherwise the first mismatched
// delivery (time, src, dst, kind, payload hash) and exit 1.
//
//   fvsim replay --capture run.fvcap [--threads N]
//
// --threads overrides the recorded worker count — legal because the capture
// order is worker-count-invariant; the engine KIND still comes from the
// recording (0 stays serial, >=1 stays parallel).
int RunReplayCmd(const Args& args) {
  const std::string path = args.Get("capture", "");
  if (path.empty()) {
    std::fprintf(stderr, "replay needs --capture FILE\n");
    return 2;
  }
  std::string data;
  if (!ReadBinaryFile(path, &data, "capture")) {
    return 2;
  }
  std::string blob;
  std::vector<CaptureRecord> expected;
  std::string error;
  if (!CaptureLog::Deserialize(data, &blob, &expected, &error)) {
    std::fprintf(stderr, "cannot load capture '%s': %s\n", path.c_str(), error.c_str());
    return 2;
  }
  StormOptions so;
  int recorded_threads = 0;
  if (!ParseStormConfigBlob(blob, &so, &recorded_threads)) {
    return 2;
  }
  int threads = args.GetInt("threads", recorded_threads);
  if ((threads > 0) != (recorded_threads > 0)) {
    std::fprintf(stderr, "capture was recorded on the %s engine; --threads must stay %s\n",
                 recorded_threads > 0 ? "parallel" : "serial",
                 recorded_threads > 0 ? ">= 1" : "0");
    return 2;
  }

  CaptureLog live(so.num_nodes);
  StormRunConfig cfg;
  cfg.capture = &live;
  RunStormEx(so, threads, cfg);
  const std::vector<CaptureRecord> actual = live.Canonical();

  const int64_t diverge = CaptureDiverge(expected, actual);
  if (diverge < 0) {
    std::printf("replay: %zu deliveries, zero diffs\n", actual.size());
    return 0;
  }
  const size_t at = static_cast<size_t>(diverge);
  std::printf("replay: DIVERGED at delivery %lld of %zu\n", static_cast<long long>(diverge),
              expected.size());
  std::printf("  recorded: %s\n", at < expected.size()
                                      ? CaptureLog::Describe(expected[at]).c_str()
                                      : "(absent — live run committed extra deliveries)");
  std::printf("  live:     %s\n", at < actual.size()
                                      ? CaptureLog::Describe(actual[at]).c_str()
                                      : "(absent — live run ended early)");
  return 1;
}

int RunSweep(const Args& args) {
  const NpbProfile profile =
      ScaleNpb(NpbByName(args.Get("bench", "CG")), args.GetDouble("scale", 0.25));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const int vcpus_min = args.GetInt("vcpus-min", 2);
  const int vcpus_max = args.GetInt("vcpus-max", 4);

  std::vector<std::string> systems;
  std::string list = args.Get("systems", "fragvisor,giantvm,overcommit:1,overcommit:2");
  for (size_t pos = 0; pos <= list.size();) {
    const size_t comma = list.find(',', pos);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > pos) {
      systems.push_back(list.substr(pos, end - pos));
    }
    pos = end + 1;
  }

  std::printf("%s sweep (scale %.2f, seed %llu)\n", profile.name.c_str(),
              args.GetDouble("scale", 0.25), static_cast<unsigned long long>(seed));
  bench::PrintRow({"system", "vCPUs", "time(ms)", "faults/s"}, 14);

  bench::ParallelRunner runner(args.GetInt("jobs", 1));
  for (const std::string& system : systems) {
    Setup base;
    if (!ParseSystem(system, &base)) {
      std::fprintf(stderr, "unknown system '%s' (fragvisor|giantvm|overcommit[:P])\n",
                   system.c_str());
      return 2;
    }
    for (int vcpus = vcpus_min; vcpus <= vcpus_max; ++vcpus) {
      runner.Submit([setup = base, system, vcpus, profile, seed]() mutable {
        setup.vcpus = vcpus;
        double faults = 0;
        const TimeNs end = bench::RunNpbMultiProcess(setup, profile, seed, &faults);
        return bench::FormatRow(
            {system, std::to_string(vcpus), bench::Fmt(ToMillis(end)), bench::Fmt(faults, 0)},
            14);
      });
    }
  }
  runner.Finish();
  return 0;
}

int List() {
  std::printf("commands:\n");
  std::printf("  npb   --bench <name> --system <sys> --vcpus N [--scale F] [--seed N]\n");
  std::printf("  lemp  --system <sys> --vcpus N [--processing-ms T] [--requests N]\n");
  std::printf("  faas  --system <sys> --vcpus N [--detect-ms T] [--download-mb M]\n");
  std::printf("  sweep --bench <name> [--systems a,b,...] [--vcpus-min N] [--vcpus-max N]\n");
  std::printf("        [--scale F] [--seed N] [--jobs N]\n");
  std::printf("  storm [--threads N] [--nodes N] [--streams N] [--accesses N] [--pages N]\n");
  std::printf("        [--cache-slots N] [--remote-frac F] [--write-frac F] [--think-ns T]\n");
  std::printf("        [--jitter-ns T] [--seed N] [--epochs N] [--report] [fault flags]\n");
  std::printf("        [--topology mesh|fat-tree --pod N --oversub R --planes K]\n");
  std::printf("        [--snapshot-save F --snapshot-epoch K] [--snapshot-load F]\n");
  std::printf("        [--capture F]\n");
  std::printf("  cluster [--nodes N] [--vms M] [--trace poisson|diurnal|flash] [--threads N]\n");
  std::printf("        [--policy fragbff|harvest] [--epochs N] [--seed N] [--span-ms T]\n");
  std::printf("        [--vcpus-per-node N] [--mem-gb G] [--max-vcpus N] [--requests N]\n");
  std::printf("        [--mem-per-vcpu-mb M] [--remote-frac F] [--no-reclaim] [--rpc-qos]\n");
  std::printf("        [--rpc-coalesce] [--jitter-ns T] [--report [PATH]]\n");
  std::printf("        [--topology mesh|fat-tree --pod N --oversub R --planes K]\n");
  std::printf("        [--dsm-rdma-read] [--dsm-compress]\n");
  std::printf("        [--snapshot-save F --snapshot-epoch K] [--snapshot-load F]\n");
  std::printf("        [--fault-seed N] [--fault-drop P] [--fault-dup P] [--fault-jitter-us U]\n");
  std::printf("        [--fault-crash n@ms,...] [--fault-restart n@ms,...]\n");
  std::printf("        [--fault-partition a-b@ms-ms,...]\n");
  std::printf("  replay --capture F [--threads N]\n");
  std::printf("  list\n\n");
  std::printf("systems: fragvisor | giantvm | overcommit[:pcpus]\n");
  std::printf("flags:   --vanilla-guest --no-multiqueue --no-bypass --no-contextual-dsm\n");
  std::printf("rpc:     --rpc-coalesce (multicast ack coalescing)\n");
  std::printf("         --rpc-qos (weighted deficit link scheduler)\n");
  std::printf("         --msg-stats [PATH] (per-kind traffic JSON; '-' = stdout)\n");
  std::printf("dsm:     --dsm-prefetch N (sequential read prefetch depth)\n");
  std::printf("         --dsm-hints (owner-hint cache: direct-to-owner faults)\n");
  std::printf("         --dsm-replicate (read-mostly replication)\n");
  std::printf("         --dsm-adaptive (adaptive transfer granularity + hold)\n");
  std::printf("         --dsm-rdma-read (one-sided RDMA-read page pulls)\n");
  std::printf("         --dsm-compress (compressed + delta-diffed page transfers)\n");
  std::printf("faults:  --fault-seed N --fault-drop P --fault-dup P --fault-delay-us U\n");
  std::printf("         --fault-crash n@ms[,..] --fault-restart n@ms[,..]\n");
  std::printf("         --fault-partition a-b@ms-ms[,..] --fault-empty\n");
  std::printf("protect: --protect (heartbeats + checkpoint/restart; npb only)\n");
  std::printf("         --detector phi|fixed (gray-failure-aware vs miss counter)\n");
  std::printf("         --partial-recovery (surgical lender-death recovery)\n");
  std::printf("         --ckpt-ms T --heartbeat-ms T\n");
  std::printf("leases:  --lease-ms T [--lease-renew-ms T] (lease borrowed resources)\n");
  std::printf("threads: --threads N on npb/lemp/faas hosts the testbed clock on the\n");
  std::printf("         parallel engine (byte-identical output); on storm/cluster it is\n");
  std::printf("         the parallel core's worker count\n\n");
  std::printf("NPB benchmarks:");
  for (const NpbProfile& p : NpbSuite()) {
    std::printf(" %s", p.name.c_str());
  }
  std::printf("\nOMP profiles:  ");
  for (const OmpProfile& p : OmpSuite()) {
    std::printf(" %s", p.name.c_str());
  }
  std::printf("\n");
  return 0;
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.command == "npb") {
    return RunNpb(args);
  }
  if (args.command == "lemp") {
    return RunLempCmd(args);
  }
  if (args.command == "faas") {
    return RunFaasCmd(args);
  }
  if (args.command == "storm") {
    return RunStormCmd(args);
  }
  if (args.command == "cluster") {
    return RunClusterCmd(args);
  }
  if (args.command == "replay") {
    return RunReplayCmd(args);
  }
  if (args.command == "sweep") {
    return RunSweep(args);
  }
  if (args.command == "list" || args.command.empty()) {
    return List();
  }
  std::fprintf(stderr, "unknown command '%s'; try 'fvsim list'\n", args.command.c_str());
  return 2;
}

}  // namespace
}  // namespace fragvisor

int main(int argc, char** argv) { return fragvisor::Main(argc, argv); }
