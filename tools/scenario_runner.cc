// Versioned scenario suite runner (DESIGN.md §10).
//
// A scenario is a flat JSON file under scenarios/ pinning one deterministic
// simulation configuration to the FNV-1a hash of its canonical report:
//
//   { "name": "storm-serial-baseline", "kind": "storm",
//     "nodes": 16, "accesses": 120, "epochs": 2, "threads": 0,
//     "expect": "0x1234abcd5678ef90" }
//
// Kinds:
//   storm  — RunStorm over StormOptions keys; report = StormReport().
//            Topology keys "topology" (mesh|fat-tree), "pod", "oversub",
//            "planes" select the interconnect (default mesh).
//            Optional cross-checks: "compare_threads" re-runs at another
//            worker count and requires byte-equal reports; "verify_resume"
//            snapshots at epoch 1, resumes in-process, and requires the
//            resumed report byte-equal too.
//   golden — the 10k-page DSM golden trace; keys hints/replicate/adaptive
//            toggle fast paths, "empty_plan" attaches an empty FaultPlan,
//            "snapshot_roundtrip" save/loads the engine mid-trace. Report =
//            GoldenTraceReport().
//   npb    — one NPB multi-process harness run; keys bench/scale/vcpus/seed.
//            Report = end time + integer fault counters.
//   cluster — the multi-tenant marketplace (cluster orchestrator, DESIGN.md
//            §11) over MarketplaceOptions keys; report = MarketplaceReport().
//            Takes the storm topology keys plus "rdma_read" / "compress"
//            (the DSM transport fast paths).
//            Supports the same "compare_threads" / "verify_resume"
//            cross-checks as storm. Fault keys (times in µs) arm the chaos
//            machinery: fault_seed/fault_drop/fault_dup/fault_jitter_us,
//            fault_crash_node+fault_crash_at_us (and a fault_crash2_* slot),
//            fault_restart_node+fault_restart_at_us, and
//            fault_cut_a/fault_cut_b/fault_cut_from_us/fault_cut_to_us.
//
// Usage:
//   scenario_runner FILE...          run, compare to "expect", exit 0/1
//   scenario_runner --print FILE...  print report + hash (pin generation)
//
// On mismatch the full canonical report is printed so the diff is in the CI
// log, and ci.sh archives it under build-ci/artifacts/.

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/cluster/marketplace.h"
#include "src/sim/fault_plan.h"
#include "src/sim/snapshot.h"
#include "src/workload/dsmstorm.h"
#include "src/workload/goldentrace.h"
#include "src/workload/npb.h"

namespace fragvisor {
namespace {

// --- Flat JSON subset parser ---------------------------------------------
// One object, string keys, scalar values (string / number / true / false).
// Arrays and nesting are rejected — scenarios are deliberately flat so the
// format stays greppable and diffable.

bool ParseFlatJson(const std::string& text, std::map<std::string, std::string>* out,
                   std::string* error) {
  size_t i = 0;
  const auto skip = [&]() {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  const auto fail = [&](const std::string& why) {
    *error = why + " (at byte " + std::to_string(i) + ")";
    return false;
  };
  const auto parse_string = [&](std::string* s) {
    ++i;  // opening quote
    s->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        return false;  // escapes unsupported — keep scenario names plain
      }
      s->push_back(text[i++]);
    }
    if (i >= text.size()) {
      return false;
    }
    ++i;  // closing quote
    return true;
  };

  skip();
  if (i >= text.size() || text[i] != '{') {
    return fail("expected '{'");
  }
  ++i;
  skip();
  if (i < text.size() && text[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    skip();
    if (i >= text.size() || text[i] != '"') {
      return fail("expected key string");
    }
    std::string key;
    if (!parse_string(&key)) {
      return fail("unterminated or escaped key");
    }
    skip();
    if (i >= text.size() || text[i] != ':') {
      return fail("expected ':'");
    }
    ++i;
    skip();
    std::string value;
    if (i < text.size() && text[i] == '"') {
      if (!parse_string(&value)) {
        return fail("unterminated or escaped value");
      }
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        value.push_back(text[i++]);
      }
      if (value.empty()) {
        return fail("expected value");
      }
      if (value == "null" || value[0] == '[' || value[0] == '{') {
        return fail("unsupported value '" + value + "' (scenarios are flat scalars)");
      }
    }
    if (!out->emplace(key, value).second) {
      return fail("duplicate key '" + key + "'");
    }
    skip();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') {
      ++i;
      skip();
      if (i != text.size()) {
        return fail("trailing bytes after '}'");
      }
      return true;
    }
    return fail("expected ',' or '}'");
  }
}

class Params {
 public:
  explicit Params(std::map<std::string, std::string> kv) : kv_(std::move(kv)) {}

  std::string Str(const std::string& key, const std::string& def) const {
    const auto it = kv_.find(key);
    if (it != kv_.end()) {
      used_.push_back(key);
    }
    return it == kv_.end() ? def : it->second;
  }
  int64_t Int(const std::string& key, int64_t def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) {
      return def;
    }
    used_.push_back(key);
    return std::atoll(it->second.c_str());
  }
  double Dbl(const std::string& key, double def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) {
      return def;
    }
    used_.push_back(key);
    return std::atof(it->second.c_str());
  }
  bool Bool(const std::string& key, bool def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) {
      return def;
    }
    used_.push_back(key);
    return it->second == "true" || it->second == "1";
  }
  bool Has(const std::string& key) const { return kv_.count(key) != 0; }

  // A typoed key would silently pin the default configuration; refuse it.
  bool CheckAllUsed(std::string* error) const {
    for (const auto& [key, value] : kv_) {
      (void)value;
      bool used = false;
      for (const auto& u : used_) {
        if (u == key) {
          used = true;
          break;
        }
      }
      if (!used) {
        *error = "unknown key '" + key + "'";
        return false;
      }
    }
    return true;
  }

 private:
  std::map<std::string, std::string> kv_;
  mutable std::vector<std::string> used_;
};

// --- Scenario kinds -------------------------------------------------------

// Shared topology keys for storm/cluster scenarios: "topology" (mesh or
// fat-tree), "pod", "oversub", "planes". Absent keys keep the mesh default,
// so every pre-existing pinned scenario is untouched.
bool ParseTopologyParams(const Params& p, TopologyConfig* topo, std::string* error) {
  const std::string kind = p.Str("topology", "mesh");
  if (kind == "mesh") {
    topo->kind = TopologyConfig::Kind::kMesh;
  } else if (kind == "fat-tree") {
    topo->kind = TopologyConfig::Kind::kFatTree;
  } else {
    *error = "unknown topology '" + kind + "' (mesh or fat-tree)";
    return false;
  }
  topo->pod_size = static_cast<int>(p.Int("pod", topo->pod_size));
  topo->oversub = p.Dbl("oversub", topo->oversub);
  topo->core_planes = static_cast<int>(p.Int("planes", topo->core_planes));
  return true;
}

bool RunStormScenario(const Params& p, std::string* report, std::string* error) {
  StormOptions so;
  so.num_nodes = static_cast<int>(p.Int("nodes", so.num_nodes));
  so.streams_per_node = static_cast<int>(p.Int("streams", so.streams_per_node));
  so.accesses_per_stream = static_cast<int>(p.Int("accesses", so.accesses_per_stream));
  so.pages_per_node = static_cast<int>(p.Int("pages", so.pages_per_node));
  so.cache_slots = static_cast<int>(p.Int("cache_slots", so.cache_slots));
  so.remote_frac = p.Dbl("remote_frac", so.remote_frac);
  so.write_frac = p.Dbl("write_frac", so.write_frac);
  so.think_ns = p.Int("think_ns", so.think_ns);
  so.seed = static_cast<uint64_t>(p.Int("seed", static_cast<int64_t>(so.seed)));
  so.epochs = static_cast<int>(p.Int("epochs", so.epochs));
  so.latency_jitter_ns = p.Int("jitter_ns", so.latency_jitter_ns);
  so.drop_prob = p.Dbl("drop_prob", so.drop_prob);
  so.dup_prob = p.Dbl("dup_prob", so.dup_prob);
  so.extra_delay_max = p.Int("extra_delay_max_ns", so.extra_delay_max);
  so.crash_node = static_cast<int32_t>(p.Int("crash_node", so.crash_node));
  so.crash_at = p.Int("crash_at_ns", so.crash_at);
  so.restart_at = p.Int("restart_at_ns", so.restart_at);
  so.partition_a = static_cast<int32_t>(p.Int("partition_a", so.partition_a));
  so.partition_b = static_cast<int32_t>(p.Int("partition_b", so.partition_b));
  so.partition_from = p.Int("partition_from_ns", so.partition_from);
  so.partition_until = p.Int("partition_until_ns", so.partition_until);
  if (!ParseTopologyParams(p, &so.topology, error)) {
    return false;
  }
  const int threads = static_cast<int>(p.Int("threads", 0));

  *report = StormReport(RunStorm(so, threads));

  if (p.Has("compare_threads")) {
    const int other = static_cast<int>(p.Int("compare_threads", 0));
    const std::string other_report = StormReport(RunStorm(so, other));
    if (other_report != *report) {
      *error = "report at --threads " + std::to_string(threads) +
               " differs from --threads " + std::to_string(other);
      return false;
    }
  }
  if (p.Bool("verify_resume", false)) {
    std::string snapshot;
    StormRunConfig save_cfg;
    save_cfg.snapshot_out = &snapshot;
    save_cfg.snapshot_epoch = 1;
    RunStormEx(so, threads, save_cfg);
    StormRunConfig load_cfg;
    load_cfg.snapshot_in = &snapshot;
    std::string load_error;
    load_cfg.error = &load_error;
    const std::string resumed = StormReport(RunStormEx(so, threads, load_cfg));
    if (!load_error.empty()) {
      *error = "resume failed: " + load_error;
      return false;
    }
    if (resumed != *report) {
      *error = "resumed report differs from the uninterrupted run";
      return false;
    }
  }
  return true;
}

bool RunClusterScenario(const Params& p, std::string* report, std::string* error) {
  MarketplaceOptions mo;
  mo.num_nodes = static_cast<int>(p.Int("nodes", mo.num_nodes));
  mo.vcpus_per_node = static_cast<int>(p.Int("vcpus_per_node", mo.vcpus_per_node));
  mo.mem_per_node = static_cast<uint64_t>(p.Int(
      "mem_gb", static_cast<int64_t>(mo.mem_per_node >> 30))) << 30;
  const std::string trace = p.Str("trace", ArrivalKindName(mo.trace.kind));
  if (!ParseArrivalKind(trace, &mo.trace.kind)) {
    *error = "unknown trace kind '" + trace + "'";
    return false;
  }
  mo.trace.vms = static_cast<int>(p.Int("vms", mo.trace.vms));
  mo.trace.span = Millis(p.Int("span_ms", mo.trace.span / Millis(1)));
  mo.trace.seed = static_cast<uint64_t>(p.Int("seed", static_cast<int64_t>(mo.trace.seed)));
  mo.trace.max_vcpus = static_cast<int>(p.Int("max_vcpus", mo.trace.max_vcpus));
  mo.trace.mem_per_vcpu = static_cast<uint64_t>(p.Int(
      "mem_per_vcpu_mb", static_cast<int64_t>(mo.trace.mem_per_vcpu >> 20))) << 20;
  mo.trace.requests_per_vcpu = static_cast<uint64_t>(
      p.Int("requests", static_cast<int64_t>(mo.trace.requests_per_vcpu)));
  mo.trace.remote_frac = p.Dbl("remote_frac", mo.trace.remote_frac);
  mo.policy = p.Str("policy", mo.policy);
  mo.epochs = static_cast<int>(p.Int("epochs", mo.epochs));
  mo.reclamation = p.Bool("reclaim", mo.reclamation);
  mo.think_ns = p.Int("think_ns", mo.think_ns);
  mo.service_ns = p.Int("service_ns", mo.service_ns);
  mo.page_service_ns = p.Int("page_service_ns", mo.page_service_ns);
  mo.qos = p.Bool("qos", mo.qos);
  mo.coalesced_acks = p.Bool("coalesce", mo.coalesced_acks);
  mo.latency_jitter_ns = p.Int("jitter_ns", mo.latency_jitter_ns);
  if (!ParseTopologyParams(p, &mo.topology, error)) {
    return false;
  }
  mo.rdma_read = p.Bool("rdma_read", mo.rdma_read);
  mo.compress = p.Bool("compress", mo.compress);

  // Fault plan: flat scalar keys, times in microseconds. Two crash slots and
  // one restart/partition slot cover the pinned chaos scenarios; richer
  // schedules stay the domain of fvsim flags and the chaos campaign.
  mo.faults.seed = static_cast<uint64_t>(p.Int("fault_seed", static_cast<int64_t>(mo.faults.seed)));
  mo.faults.drop_prob = p.Dbl("fault_drop", mo.faults.drop_prob);
  mo.faults.dup_prob = p.Dbl("fault_dup", mo.faults.dup_prob);
  mo.faults.extra_delay_max = Micros(p.Int("fault_jitter_us", 0));
  if (p.Has("fault_crash_node")) {
    mo.faults.crashes.push_back({static_cast<int>(p.Int("fault_crash_node", -1)),
                                 Micros(p.Int("fault_crash_at_us", 0))});
  }
  if (p.Has("fault_crash2_node")) {
    mo.faults.crashes.push_back({static_cast<int>(p.Int("fault_crash2_node", -1)),
                                 Micros(p.Int("fault_crash2_at_us", 0))});
  }
  if (p.Has("fault_restart_node")) {
    mo.faults.restarts.push_back({static_cast<int>(p.Int("fault_restart_node", -1)),
                                  Micros(p.Int("fault_restart_at_us", 0))});
  }
  if (p.Has("fault_cut_a")) {
    mo.faults.partitions.push_back({static_cast<int>(p.Int("fault_cut_a", -1)),
                                    static_cast<int>(p.Int("fault_cut_b", -1)),
                                    Micros(p.Int("fault_cut_from_us", 0)),
                                    Micros(p.Int("fault_cut_to_us", 0))});
  }
  const int threads = static_cast<int>(p.Int("threads", 1));

  *report = MarketplaceReport(RunMarketplace(mo, threads));

  if (p.Has("compare_threads")) {
    const int other = static_cast<int>(p.Int("compare_threads", 0));
    const std::string other_report = MarketplaceReport(RunMarketplace(mo, other));
    if (other_report != *report) {
      *error = "report at --threads " + std::to_string(threads) +
               " differs from --threads " + std::to_string(other);
      return false;
    }
  }
  if (p.Bool("verify_resume", false)) {
    std::string snapshot;
    MarketplaceRunConfig save_cfg;
    save_cfg.snapshot_out = &snapshot;
    save_cfg.snapshot_epoch = 1;
    RunMarketplaceEx(mo, threads, save_cfg);
    MarketplaceRunConfig load_cfg;
    load_cfg.snapshot_in = &snapshot;
    std::string load_error;
    load_cfg.error = &load_error;
    const std::string resumed = MarketplaceReport(RunMarketplaceEx(mo, threads, load_cfg));
    if (!load_error.empty()) {
      *error = "resume failed: " + load_error;
      return false;
    }
    if (resumed != *report) {
      *error = "resumed report differs from the uninterrupted run";
      return false;
    }
  }
  return true;
}

bool RunGoldenScenario(const Params& p, std::string* report, std::string* error) {
  const bool hints = p.Bool("hints", false);
  const bool replicate = p.Bool("replicate", false);
  const bool adaptive = p.Bool("adaptive", false);
  const auto mutate = [&](DsmEngine::Options& o) {
    o.owner_hints = hints;
    o.read_mostly_replication = replicate;
    o.adaptive_granularity = adaptive;
  };
  FaultPlan plan(0xFEED);
  FaultPlan* attached = p.Bool("empty_plan", false) ? &plan : nullptr;
  const GoldenTraceResult r =
      RunGoldenTrace(attached, mutate, p.Bool("snapshot_roundtrip", false));
  if (attached != nullptr && !plan.empty()) {
    *error = "the empty fault plan accreted entries";
    return false;
  }
  *report = GoldenTraceReport(r);
  return true;
}

bool RunNpbScenario(const Params& p, std::string* report, std::string* error) {
  const std::string name = p.Str("bench", "CG");
  const NpbProfile profile = ScaleNpb(NpbByName(name), p.Dbl("scale", 0.1));
  bench::Setup setup;
  setup.vcpus = static_cast<int>(p.Int("vcpus", 3));
  const uint64_t seed = static_cast<uint64_t>(p.Int("seed", 1));
  bench::FaultReport faults;
  const TimeNs end = bench::RunNpbMultiProcess(setup, profile, seed, nullptr, &faults);
  (void)error;
  std::string out;
  const auto line = [&out](const char* key, uint64_t v) {
    out += key;
    out += '=';
    out += std::to_string(v);
    out += '\n';
  };
  line("end_ns", static_cast<uint64_t>(end));
  line("dropped", faults.dropped);
  line("duplicated", faults.duplicated);
  line("delayed", faults.delayed);
  line("crashes", faults.crashes);
  line("restarts", faults.restarts);
  line("retransmits", faults.retransmits);
  line("timeouts", faults.timeouts);
  line("send_failures", faults.send_failures);
  line("dups_suppressed", faults.dups_suppressed);
  line("dsm_retries", faults.dsm_retries);
  line("dsm_absorbed", faults.dsm_absorbed);
  line("dsm_write_aborts", faults.dsm_write_aborts);
  line("dsm_pages_reclaimed", faults.dsm_pages_reclaimed);
  *report = out;
  return true;
}

// --- Driver ---------------------------------------------------------------

bool ReadFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open scenario '%s'\n", path.c_str());
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

std::string HashHex(uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
  return buf;
}

// 0 = pass, 1 = mismatch/failure, 2 = unusable scenario file.
int RunScenarioFile(const std::string& path, bool print_only) {
  std::string text;
  if (!ReadFile(path, &text)) {
    return 2;
  }
  std::map<std::string, std::string> kv;
  std::string error;
  if (!ParseFlatJson(text, &kv, &error)) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  Params p(std::move(kv));
  const std::string name = p.Str("name", path);
  const std::string kind = p.Str("kind", "");
  const std::string expect = p.Str("expect", "");

  std::string report;
  bool ok = false;
  if (kind == "storm") {
    ok = RunStormScenario(p, &report, &error);
  } else if (kind == "golden") {
    ok = RunGoldenScenario(p, &report, &error);
  } else if (kind == "npb") {
    ok = RunNpbScenario(p, &report, &error);
  } else if (kind == "cluster") {
    ok = RunClusterScenario(p, &report, &error);
  } else {
    std::fprintf(stderr, "%s: unknown kind '%s'\n", path.c_str(), kind.c_str());
    return 2;
  }
  if (ok && !p.CheckAllUsed(&error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  if (!ok) {
    std::fprintf(stderr, "SCENARIO %s FAILED: %s\n", name.c_str(), error.c_str());
    return 1;
  }

  const std::string hash = HashHex(SnapshotHashString(report));
  if (print_only) {
    std::printf("# scenario %s (%s)\n%s%s\n", name.c_str(), kind.c_str(), report.c_str(),
                hash.c_str());
    return 0;
  }
  if (expect.empty()) {
    std::fprintf(stderr, "%s: no \"expect\" pin; generate one with --print\n", path.c_str());
    return 2;
  }
  if (hash != expect) {
    std::printf("SCENARIO %s MISMATCH: expected %s got %s\ncanonical report:\n%s",
                name.c_str(), expect.c_str(), hash.c_str(), report.c_str());
    return 1;
  }
  std::printf("SCENARIO %s OK %s\n", name.c_str(), hash.c_str());
  return 0;
}

}  // namespace
}  // namespace fragvisor

int main(int argc, char** argv) {
  bool print_only = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print") {
      print_only = true;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: scenario_runner [--print] FILE...\n");
    return 2;
  }
  int worst = 0;
  for (const std::string& f : files) {
    const int rc = fragvisor::RunScenarioFile(f, print_only);
    worst = std::max(worst, rc);
  }
  return worst;
}
