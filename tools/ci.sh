#!/usr/bin/env bash
# Local CI: builds the Release and sanitizer configurations and runs the
# full test suite under each.
#
#   tools/ci.sh            # release + asan + ubsan
#   tools/ci.sh release    # just one configuration
#
# Build trees live under build-ci/<config> so they never collide with the
# default ./build developer tree.

set -euo pipefail
cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(release asan ubsan)
fi

jobs=$(nproc 2>/dev/null || echo 4)

for config in "${configs[@]}"; do
  case "$config" in
    release) cmake_args=(-DCMAKE_BUILD_TYPE=Release -DFRAGVISOR_SANITIZE=) ;;
    asan)    cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DFRAGVISOR_SANITIZE=address) ;;
    ubsan)   cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DFRAGVISOR_SANITIZE=undefined) ;;
    *) echo "unknown config '$config' (release|asan|ubsan)" >&2; exit 2 ;;
  esac
  # CI builds are warning-clean by construction.
  cmake_args+=(-DFRAGVISOR_WERROR=ON)

  build_dir="build-ci/$config"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . "${cmake_args[@]}" >/dev/null
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$jobs" >/dev/null
  echo "=== [$config] ctest (tier1) ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L tier1

  if [ "$config" = "asan" ] || [ "$config" = "ubsan" ]; then
    # Randomized fault-injection suites get extra mileage under the
    # sanitizers: three distinct seeds per configuration. Every seed run
    # includes the partial-recovery sweep (PartialRecoveryTest relocates the
    # crash times and kills each lender node in turn, comparing the surgical
    # path against the full restore).
    for seed in 1 2 3; do
      echo "=== [$config] ctest (tier2, FV_FAULT_SEED=$seed) ==="
      FV_FAULT_SEED=$seed ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs" -L tier2
    done
  else
    echo "=== [$config] ctest (tier2) ==="
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L tier2
    # The partial-recovery sweep is cheap enough to seed-sweep in release too.
    for seed in 1 2 3; do
      echo "=== [$config] partial-recovery sweep (FV_FAULT_SEED=$seed) ==="
      FV_FAULT_SEED=$seed ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs" -L tier2 -R PartialRecovery
    done
  fi
done

echo "ci: all configurations passed (${configs[*]})"
