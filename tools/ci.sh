#!/usr/bin/env bash
# Local CI: builds the Release and sanitizer configurations and runs the
# full test suite under each.
#
#   tools/ci.sh            # release + asan + ubsan + tsan
#   tools/ci.sh release    # just one configuration
#
# Build trees live under build-ci/<config> so they never collide with the
# default ./build developer tree.

set -euo pipefail
cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(release asan ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 4)

for config in "${configs[@]}"; do
  case "$config" in
    release) cmake_args=(-DCMAKE_BUILD_TYPE=Release -DFRAGVISOR_SANITIZE=) ;;
    asan)    cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DFRAGVISOR_SANITIZE=address) ;;
    ubsan)   cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DFRAGVISOR_SANITIZE=undefined) ;;
    tsan)    cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DFRAGVISOR_SANITIZE=thread) ;;
    *) echo "unknown config '$config' (release|asan|ubsan|tsan)" >&2; exit 2 ;;
  esac
  # CI builds are warning-clean by construction.
  cmake_args+=(-DFRAGVISOR_WERROR=ON)

  build_dir="build-ci/$config"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . "${cmake_args[@]}" >/dev/null
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$jobs" >/dev/null
  if [ "$config" = "tsan" ]; then
    # ThreadSanitizer leg: the parallel simulation core is the only place
    # worker threads touch shared state, so only the parallel tier-1 suites
    # (ParallelLoop/ParallelCancel/ParallelStorm, which run the coordinator
    # plus worker pool at up to 8 threads) need the instrumented run.
    echo "=== [$config] ctest (tier1 parallel core) ==="
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L tier1 -R 'Parallel'
    continue
  fi

  echo "=== [$config] ctest (tier1) ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L tier1

  if [ "$config" = "release" ] || [ "$config" = "asan" ]; then
    # Versioned scenario suite (DESIGN.md §10): every pinned configuration
    # must reproduce its expected-output hash. On mismatch the runner prints
    # the full canonical report; archive it for the postmortem.
    artifacts="build-ci/artifacts"
    mkdir -p "$artifacts"
    echo "=== [$config] scenario suite ==="
    if ! "$build_dir/tools/scenario_runner" scenarios/*.json \
        | tee "$artifacts/scenarios_$config.txt"; then
      echo "scenario suite failed; report at $artifacts/scenarios_$config.txt" >&2
      exit 1
    fi

    # Whole-sim snapshot + fabric record/replay through separate processes:
    # run A records a capture and saves a snapshot at epoch 1; run B resumes
    # from the snapshot and must produce a byte-identical canonical report;
    # `fvsim replay` re-runs the recorded configuration and must commit the
    # exact same delivery stream. Diverging captures stay in the artifacts
    # directory for offline diffing.
    echo "=== [$config] fvsim snapshot + capture/replay round trip ==="
    snap_flags=(storm --nodes 12 --streams 3 --accesses 80 --epochs 3
                --threads 2 --fault-drop 0.02 --fault-delay-us 2)
    "$build_dir/tools/fvsim" "${snap_flags[@]}" \
        --capture "$artifacts/ci_storm_$config.fvcap" \
        --snapshot-save "$artifacts/ci_storm_$config.fvsnap" --snapshot-epoch 1 \
        --report "$artifacts/ci_storm_full_$config.txt" >/dev/null
    "$build_dir/tools/fvsim" "${snap_flags[@]}" \
        --snapshot-load "$artifacts/ci_storm_$config.fvsnap" \
        --report "$artifacts/ci_storm_resumed_$config.txt" >/dev/null
    diff "$artifacts/ci_storm_full_$config.txt" \
         "$artifacts/ci_storm_resumed_$config.txt"
    echo "fresh-process snapshot resume is byte-identical"
    if ! "$build_dir/tools/fvsim" replay \
        --capture "$artifacts/ci_storm_$config.fvcap"; then
      echo "replay diverged; capture kept at $artifacts/ci_storm_$config.fvcap" >&2
      exit 1
    fi
  fi

  if [ "$config" = "asan" ] || [ "$config" = "ubsan" ]; then
    # Randomized fault-injection suites get extra mileage under the
    # sanitizers: three distinct seeds per configuration. Every seed run
    # includes the partial-recovery sweep (PartialRecoveryTest relocates the
    # crash times and kills each lender node in turn, comparing the surgical
    # path against the full restore).
    for seed in 1 2 3; do
      echo "=== [$config] ctest (tier2, FV_FAULT_SEED=$seed) ==="
      FV_FAULT_SEED=$seed ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs" -L tier2
    done
  else
    echo "=== [$config] ctest (tier2) ==="
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L tier2
    # The partial-recovery sweep is cheap enough to seed-sweep in release too.
    for seed in 1 2 3; do
      echo "=== [$config] partial-recovery sweep (FV_FAULT_SEED=$seed) ==="
      FV_FAULT_SEED=$seed ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs" -L tier2 -R PartialRecovery
    done
    # Cluster chaos campaign sweep (DESIGN.md §12): each seed block derives
    # fresh crash/partition/jitter schedules, checks the cluster invariants,
    # and byte-compares every run across worker counts.
    for seed in 1 7 1234; do
      echo "=== [$config] cluster chaos sweep (FV_FAULT_SEED=$seed) ==="
      FV_FAULT_SEED=$seed ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs" -L tier2 -R ClusterChaosSweep
    done

    # Perf trajectory + fast-path gates, release only. Both benches write
    # BENCH_*.json artifacts into build-ci/artifacts/; ablation_dsm_fastpath
    # exits non-zero (failing CI here) when any swept configuration violates
    # the coherence invariants or changes workload results.
    artifacts="build-ci/artifacts"
    mkdir -p "$artifacts"
    echo "=== [$config] bench: micro_core_hotpath ==="
    "$build_dir/bench/micro_core_hotpath" --events 500000 --accesses 500000 \
      --out "$artifacts/BENCH_core_hotpath.json" \
      --parallel-out "$artifacts/BENCH_parallel_core.json"
    echo "=== [$config] bench: ablation_dsm_fastpath (invariant gate) ==="
    "$build_dir/bench/ablation_dsm_fastpath" --quick \
      --out "$artifacts/BENCH_dsm_fastpath.json"
    # The marketplace ablation doubles as a determinism gate: it fails when
    # the cluster report differs across worker counts.
    echo "=== [$config] bench: cluster_marketplace (fragbff vs harvest) ==="
    "$build_dir/bench/cluster_marketplace" --quick \
      --out "$artifacts/BENCH_cluster_marketplace.json"
    # The chaos bench gates on both the cluster invariants and campaign
    # reproducibility (it exits non-zero on any violation).
    echo "=== [$config] bench: cluster_chaos (fault-tolerance campaign) ==="
    "$build_dir/bench/cluster_chaos" --quick \
      --out "$artifacts/BENCH_cluster_chaos.json"
    # Transport fast-path sensitivity study: RDMA-read and compression must
    # keep workload results byte-identical while improving latency/bytes, and
    # the fat-tree oversubscription sweep must stay monotone (non-zero exit
    # on any violated gate).
    echo "=== [$config] bench: fabric_transport (RDMA/compression/fat-tree) ==="
    "$build_dir/bench/fabric_transport" --quick \
      --out "$artifacts/BENCH_fabric_transport.json"

    # Run-to-run determinism of the fast paths at the fvsim level: two
    # identical runs with every --dsm-* flag on must diff clean.
    echo "=== [$config] fvsim fast-path determinism ==="
    fvsim_flags=(npb --bench CG --vcpus 4 --dsm-prefetch 2 --dsm-hints
                 --dsm-replicate --dsm-adaptive)
    "$build_dir/tools/fvsim" "${fvsim_flags[@]}" > "$artifacts/fvsim_dsm_run1.txt"
    "$build_dir/tools/fvsim" "${fvsim_flags[@]}" > "$artifacts/fvsim_dsm_run2.txt"
    diff "$artifacts/fvsim_dsm_run1.txt" "$artifacts/fvsim_dsm_run2.txt"
    echo "fast-path runs are deterministic"

    # Parallel-core determinism at the fvsim level: the storm's canonical
    # report must be byte-identical across worker counts (incl. with faults).
    echo "=== [$config] fvsim parallel-core determinism ==="
    storm_flags=(storm --nodes 32 --streams 3 --accesses 80
                 --fault-drop 0.03 --fault-dup 0.02 --fault-delay-us 3)
    "$build_dir/tools/fvsim" "${storm_flags[@]}" --threads 1 \
      --report "$artifacts/fvsim_storm_t1.txt" >/dev/null
    "$build_dir/tools/fvsim" "${storm_flags[@]}" --threads 4 \
      --report "$artifacts/fvsim_storm_t4.txt" >/dev/null
    diff "$artifacts/fvsim_storm_t1.txt" "$artifacts/fvsim_storm_t4.txt"
    echo "parallel-core runs are deterministic across worker counts"
  fi
done

echo "ci: all configurations passed (${configs[*]})"
